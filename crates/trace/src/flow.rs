//! Per-flow traces and multi-flow capture reassembly.

use std::collections::HashMap;

use crate::record::{Direction, RecordSink, TraceRecord};
use simnet::time::{SimDuration, SimTime};

/// The canonical 4-tuple identifying a flow, oriented so that the *server*
/// is the source of [`Direction::Out`] packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Server IPv4 address.
    pub server_ip: [u8; 4],
    /// Server TCP port.
    pub server_port: u16,
    /// Client IPv4 address.
    pub client_ip: [u8; 4],
    /// Client TCP port.
    pub client_port: u16,
}

impl FlowKey {
    /// A synthetic key for simulator-generated flows, unique per flow id.
    pub fn synthetic(flow_id: u32) -> Self {
        FlowKey {
            server_ip: [10, 0, 0, 1],
            server_port: 80,
            client_ip: [
                192,
                168,
                ((flow_id >> 8) & 0xff) as u8,
                (flow_id & 0xff) as u8,
            ],
            // Wrapping keeps the id→key map bijective (adding a constant
            // mod 2^16 permutes the port space) without overflowing for
            // ids above 0xd8f0_0000.
            client_port: 10_000u16.wrapping_add((flow_id >> 16) as u16),
        }
    }
}

/// The trace of one TCP flow as captured at the server, in time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowTrace {
    /// Flow identity (synthetic for simulated flows).
    pub key: Option<FlowKey>,
    /// Time-ordered records, both directions.
    pub records: Vec<TraceRecord>,
}

impl FlowTrace {
    /// An empty trace with the given key.
    pub fn new(key: FlowKey) -> Self {
        FlowTrace {
            key: Some(key),
            records: Vec::new(),
        }
    }

    /// Re-key the trace for a new flow, dropping all records but keeping
    /// the record vector's backing storage — the recycling counterpart of
    /// [`FlowTrace::new`] for workers that materialize many traces whose
    /// records do not outlive the per-flow processing.
    pub fn reset_for(&mut self, key: FlowKey) {
        self.key = Some(key);
        self.records.clear();
    }

    /// Append a record; panics in debug builds if time order is violated.
    pub fn push(&mut self, rec: TraceRecord) {
        debug_assert!(
            self.records.last().is_none_or(|p| p.t <= rec.t),
            "trace records must be pushed in time order"
        );
        self.records.push(rec);
    }

    /// Capture timestamp of the first record.
    pub fn start(&self) -> Option<SimTime> {
        self.records.first().map(|r| r.t)
    }

    /// Capture timestamp of the last record.
    pub fn end(&self) -> Option<SimTime> {
        self.records.last().map(|r| r.t)
    }

    /// Wall-clock span of the trace.
    pub fn duration(&self) -> SimDuration {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e - s,
            _ => SimDuration::ZERO,
        }
    }

    /// Total payload bytes seen per direction `(out, in)`, counting
    /// retransmissions once per transmission (wire bytes, not goodput).
    pub fn wire_bytes(&self) -> (u64, u64) {
        let mut out = 0;
        let mut inb = 0;
        for r in &self.records {
            match r.dir {
                Direction::Out => out += r.len as u64,
                Direction::In => inb += r.len as u64,
            }
        }
        (out, inb)
    }

    /// Unique payload bytes in the server→client direction (goodput bytes):
    /// the highest `seq_end` over outbound data records.
    pub fn goodput_bytes_out(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.dir == Direction::Out && r.has_data())
            .map(|r| r.seq_end())
            .max()
            .unwrap_or(0)
    }

    /// Iterate over outbound data records.
    pub fn out_data(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.dir == Direction::Out && r.has_data())
    }
}

impl RecordSink for FlowTrace {
    fn record(&mut self, rec: &TraceRecord) {
        self.push(*rec);
    }
}

/// Reassembles an interleaved multi-flow capture into per-flow traces.
///
/// Records must be offered in capture (time) order; flows are keyed by the
/// 4-tuple. A 4-tuple is *reusable*: once a flow has closed (a FIN or RST
/// was seen), a later bare SYN on the same key starts a fresh flow instead
/// of merging into the dead one — ephemeral client ports recycle quickly on
/// busy servers. Post-close stragglers that are not SYNs (retransmitted
/// FINs, final ACKs) still append to the closed flow.
#[derive(Debug, Default)]
pub struct FlowTable {
    /// Key → index of the *current* generation in `traces`.
    current: HashMap<FlowKey, usize>,
    /// All generations, in first-seen order.
    traces: Vec<FlowTrace>,
    /// Whether a FIN or RST has been seen, parallel to `traces`.
    closed: Vec<bool>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer one record belonging to `key`.
    pub fn push(&mut self, key: FlowKey, rec: TraceRecord) {
        let idx = match self.current.get(&key) {
            Some(&i) if self.closed[i] && rec.flags.syn && !rec.flags.ack => {
                // Key reuse: the previous flow on this 4-tuple is closed and
                // a new connection attempt arrived — rotate to a fresh flow.
                let fresh = self.traces.len();
                self.traces.push(FlowTrace::new(key));
                self.closed.push(false);
                self.current.insert(key, fresh);
                fresh
            }
            Some(&i) => i,
            None => {
                let fresh = self.traces.len();
                self.traces.push(FlowTrace::new(key));
                self.closed.push(false);
                self.current.insert(key, fresh);
                fresh
            }
        };
        if rec.flags.fin || rec.flags.rst {
            self.closed[idx] = true;
        }
        self.traces[idx].push(rec);
    }

    /// True if the current flow on `key` has seen a FIN or RST (a bare SYN
    /// arriving next would start a new flow). False for unknown keys.
    pub fn is_closed(&self, key: &FlowKey) -> bool {
        self.current.get(key).is_some_and(|&i| self.closed[i])
    }

    /// Number of distinct flows seen (key reuse counts each generation).
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if no flows were seen.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Consume the table, yielding traces in first-seen order.
    pub fn into_traces(self) -> Vec<FlowTrace> {
        self.traces
    }

    /// Borrow the current generation of a flow by key.
    pub fn get(&self, key: &FlowKey) -> Option<&FlowTrace> {
        self.current.get(key).map(|&i| &self.traces[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SackList, SegFlags};

    fn rec(t_ms: u64, dir: Direction, seq: u64, len: u32) -> TraceRecord {
        TraceRecord {
            t: SimTime::from_millis(t_ms),
            dir,
            seq,
            len,
            flags: SegFlags::ACK,
            ack: 0,
            rwnd: 65535,
            sack: SackList::new(),
            dsack: false,
        }
    }

    #[test]
    fn flow_trace_accumulates_metrics() {
        let mut ft = FlowTrace::new(FlowKey::synthetic(1));
        ft.push(rec(0, Direction::In, 0, 100)); // request
        ft.push(rec(10, Direction::Out, 0, 1448));
        ft.push(rec(12, Direction::Out, 1448, 1448));
        ft.push(rec(40, Direction::Out, 0, 1448)); // retransmission
        assert_eq!(ft.duration(), SimDuration::from_millis(40));
        assert_eq!(ft.wire_bytes(), (1448 * 3, 100));
        assert_eq!(ft.goodput_bytes_out(), 2896);
        assert_eq!(ft.out_data().count(), 3);
    }

    #[test]
    fn flow_table_demultiplexes_in_first_seen_order() {
        let mut table = FlowTable::new();
        let k1 = FlowKey::synthetic(1);
        let k2 = FlowKey::synthetic(2);
        table.push(k1, rec(0, Direction::Out, 0, 10));
        table.push(k2, rec(1, Direction::Out, 0, 20));
        table.push(k1, rec(2, Direction::Out, 10, 10));
        assert_eq!(table.len(), 2);
        let traces = table.into_traces();
        assert_eq!(traces[0].records.len(), 2);
        assert_eq!(traces[1].records.len(), 1);
        assert_eq!(traces[0].key, Some(k1));
    }

    #[test]
    fn key_reuse_after_close_starts_fresh_flow() {
        // A closed flow's 4-tuple gets reused by a new connection: the bare
        // SYN must open a second generation, not merge into the dead flow.
        let mut table = FlowTable::new();
        let k = FlowKey::synthetic(9);
        let syn = |t_ms| TraceRecord {
            flags: SegFlags {
                syn: true,
                ack: false,
                ..Default::default()
            },
            ..rec(t_ms, Direction::In, 0, 0)
        };
        let fin = |t_ms| TraceRecord {
            flags: SegFlags {
                fin: true,
                ack: true,
                ..Default::default()
            },
            ..rec(t_ms, Direction::Out, 10, 0)
        };
        table.push(k, syn(0));
        table.push(k, rec(1, Direction::Out, 0, 10));
        assert!(!table.is_closed(&k));
        table.push(k, fin(2));
        assert!(table.is_closed(&k));
        // A straggling final ACK still lands on the closed generation.
        table.push(k, rec(3, Direction::In, 0, 0));
        // ... but a fresh SYN rotates.
        table.push(k, syn(10));
        assert!(!table.is_closed(&k));
        table.push(k, rec(11, Direction::Out, 0, 20));
        assert_eq!(table.len(), 2);
        let traces = table.into_traces();
        assert_eq!(traces[0].records.len(), 4);
        assert_eq!(traces[1].records.len(), 2);
        assert_eq!(traces[0].key, Some(k));
        assert_eq!(traces[1].key, Some(k));
    }

    #[test]
    fn rst_also_closes_for_reuse() {
        let mut table = FlowTable::new();
        let k = FlowKey::synthetic(3);
        let mut rst = rec(0, Direction::Out, 0, 0);
        rst.flags.rst = true;
        table.push(k, rst);
        assert!(table.is_closed(&k));
        let mut syn = rec(5, Direction::In, 0, 0);
        syn.flags = SegFlags::SYN;
        table.push(k, syn);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn non_syn_after_close_does_not_rotate() {
        let mut table = FlowTable::new();
        let k = FlowKey::synthetic(4);
        let mut fin = rec(0, Direction::Out, 0, 0);
        fin.flags.fin = true;
        table.push(k, fin);
        table.push(k, rec(1, Direction::In, 0, 0));
        // A SYN-ACK is not a connection attempt from the client either.
        let mut synack = rec(2, Direction::Out, 0, 0);
        synack.flags = SegFlags::SYN_ACK;
        table.push(k, synack);
        assert_eq!(table.len(), 1);
        assert_eq!(table.get(&k).unwrap().records.len(), 3);
    }

    #[test]
    fn synthetic_keys_are_unique() {
        let a = FlowKey::synthetic(1);
        let b = FlowKey::synthetic(2);
        let c = FlowKey::synthetic(65536 + 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_trace_metrics() {
        let ft = FlowTrace::default();
        assert_eq!(ft.duration(), SimDuration::ZERO);
        assert_eq!(ft.goodput_bytes_out(), 0);
        assert_eq!(ft.start(), None);
    }
}

//! Per-flow traces and multi-flow capture reassembly.

use std::collections::HashMap;

use crate::record::{Direction, RecordSink, TraceRecord};
use simnet::time::{SimDuration, SimTime};

/// The canonical 4-tuple identifying a flow, oriented so that the *server*
/// is the source of [`Direction::Out`] packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Server IPv4 address.
    pub server_ip: [u8; 4],
    /// Server TCP port.
    pub server_port: u16,
    /// Client IPv4 address.
    pub client_ip: [u8; 4],
    /// Client TCP port.
    pub client_port: u16,
}

impl FlowKey {
    /// A synthetic key for simulator-generated flows, unique per flow id.
    pub fn synthetic(flow_id: u32) -> Self {
        FlowKey {
            server_ip: [10, 0, 0, 1],
            server_port: 80,
            client_ip: [
                192,
                168,
                ((flow_id >> 8) & 0xff) as u8,
                (flow_id & 0xff) as u8,
            ],
            client_port: 10_000 + (flow_id >> 16) as u16,
        }
    }
}

/// The trace of one TCP flow as captured at the server, in time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowTrace {
    /// Flow identity (synthetic for simulated flows).
    pub key: Option<FlowKey>,
    /// Time-ordered records, both directions.
    pub records: Vec<TraceRecord>,
}

impl FlowTrace {
    /// An empty trace with the given key.
    pub fn new(key: FlowKey) -> Self {
        FlowTrace {
            key: Some(key),
            records: Vec::new(),
        }
    }

    /// Re-key the trace for a new flow, dropping all records but keeping
    /// the record vector's backing storage — the recycling counterpart of
    /// [`FlowTrace::new`] for workers that materialize many traces whose
    /// records do not outlive the per-flow processing.
    pub fn reset_for(&mut self, key: FlowKey) {
        self.key = Some(key);
        self.records.clear();
    }

    /// Append a record; panics in debug builds if time order is violated.
    pub fn push(&mut self, rec: TraceRecord) {
        debug_assert!(
            self.records.last().is_none_or(|p| p.t <= rec.t),
            "trace records must be pushed in time order"
        );
        self.records.push(rec);
    }

    /// Capture timestamp of the first record.
    pub fn start(&self) -> Option<SimTime> {
        self.records.first().map(|r| r.t)
    }

    /// Capture timestamp of the last record.
    pub fn end(&self) -> Option<SimTime> {
        self.records.last().map(|r| r.t)
    }

    /// Wall-clock span of the trace.
    pub fn duration(&self) -> SimDuration {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e - s,
            _ => SimDuration::ZERO,
        }
    }

    /// Total payload bytes seen per direction `(out, in)`, counting
    /// retransmissions once per transmission (wire bytes, not goodput).
    pub fn wire_bytes(&self) -> (u64, u64) {
        let mut out = 0;
        let mut inb = 0;
        for r in &self.records {
            match r.dir {
                Direction::Out => out += r.len as u64,
                Direction::In => inb += r.len as u64,
            }
        }
        (out, inb)
    }

    /// Unique payload bytes in the server→client direction (goodput bytes):
    /// the highest `seq_end` over outbound data records.
    pub fn goodput_bytes_out(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.dir == Direction::Out && r.has_data())
            .map(|r| r.seq_end())
            .max()
            .unwrap_or(0)
    }

    /// Iterate over outbound data records.
    pub fn out_data(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.dir == Direction::Out && r.has_data())
    }
}

impl RecordSink for FlowTrace {
    fn record(&mut self, rec: &TraceRecord) {
        self.push(*rec);
    }
}

/// Reassembles an interleaved multi-flow capture into per-flow traces.
///
/// Records must be offered in capture (time) order; flows are keyed by the
/// 4-tuple.
#[derive(Debug, Default)]
pub struct FlowTable {
    flows: HashMap<FlowKey, FlowTrace>,
    order: Vec<FlowKey>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer one record belonging to `key`.
    pub fn push(&mut self, key: FlowKey, rec: TraceRecord) {
        self.flows
            .entry(key)
            .or_insert_with(|| {
                self.order.push(key);
                FlowTrace::new(key)
            })
            .push(rec);
    }

    /// Number of distinct flows seen.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if no flows were seen.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Consume the table, yielding traces in first-seen order.
    pub fn into_traces(mut self) -> Vec<FlowTrace> {
        self.order
            .iter()
            .filter_map(|k| self.flows.remove(k))
            .collect()
    }

    /// Borrow a flow's trace by key.
    pub fn get(&self, key: &FlowKey) -> Option<&FlowTrace> {
        self.flows.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SackList, SegFlags};

    fn rec(t_ms: u64, dir: Direction, seq: u64, len: u32) -> TraceRecord {
        TraceRecord {
            t: SimTime::from_millis(t_ms),
            dir,
            seq,
            len,
            flags: SegFlags::ACK,
            ack: 0,
            rwnd: 65535,
            sack: SackList::new(),
            dsack: false,
        }
    }

    #[test]
    fn flow_trace_accumulates_metrics() {
        let mut ft = FlowTrace::new(FlowKey::synthetic(1));
        ft.push(rec(0, Direction::In, 0, 100)); // request
        ft.push(rec(10, Direction::Out, 0, 1448));
        ft.push(rec(12, Direction::Out, 1448, 1448));
        ft.push(rec(40, Direction::Out, 0, 1448)); // retransmission
        assert_eq!(ft.duration(), SimDuration::from_millis(40));
        assert_eq!(ft.wire_bytes(), (1448 * 3, 100));
        assert_eq!(ft.goodput_bytes_out(), 2896);
        assert_eq!(ft.out_data().count(), 3);
    }

    #[test]
    fn flow_table_demultiplexes_in_first_seen_order() {
        let mut table = FlowTable::new();
        let k1 = FlowKey::synthetic(1);
        let k2 = FlowKey::synthetic(2);
        table.push(k1, rec(0, Direction::Out, 0, 10));
        table.push(k2, rec(1, Direction::Out, 0, 20));
        table.push(k1, rec(2, Direction::Out, 10, 10));
        assert_eq!(table.len(), 2);
        let traces = table.into_traces();
        assert_eq!(traces[0].records.len(), 2);
        assert_eq!(traces[1].records.len(), 1);
        assert_eq!(traces[0].key, Some(k1));
    }

    #[test]
    fn synthetic_keys_are_unique() {
        let a = FlowKey::synthetic(1);
        let b = FlowKey::synthetic(2);
        let c = FlowKey::synthetic(65536 + 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_trace_metrics() {
        let ft = FlowTrace::default();
        assert_eq!(ft.duration(), SimDuration::ZERO);
        assert_eq!(ft.goodput_bytes_out(), 0);
        assert_eq!(ft.start(), None);
    }
}

//! The per-packet trace record.

use simnet::time::SimTime;

/// Direction of a packet relative to the capture vantage point (the server):
/// `Out` = server → client, `In` = client → server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Sent by the server (data direction in the paper's services).
    Out,
    /// Received by the server (requests and acknowledgments).
    In,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

/// TCP header flags we track (CWR/ECE/PSH/URG are irrelevant to the
/// classifier and omitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegFlags {
    /// SYN flag.
    pub syn: bool,
    /// FIN flag.
    pub fin: bool,
    /// RST flag.
    pub rst: bool,
    /// ACK flag (set on everything except the very first SYN).
    pub ack: bool,
}

impl SegFlags {
    /// Flags for an ordinary data or pure-ACK segment.
    pub const ACK: SegFlags = SegFlags {
        syn: false,
        fin: false,
        rst: false,
        ack: true,
    };
    /// Flags for an initial SYN.
    pub const SYN: SegFlags = SegFlags {
        syn: true,
        fin: false,
        rst: false,
        ack: false,
    };
    /// Flags for a SYN-ACK.
    pub const SYN_ACK: SegFlags = SegFlags {
        syn: true,
        fin: false,
        rst: false,
        ack: true,
    };
}

/// A SACK block in stream-offset space: bytes `[start, end)` were received.
///
/// Note the exclusive end, unlike the wire format's inclusive-exclusive
/// right-edge convention — conversion happens in the pcap layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SackBlock {
    /// First byte covered.
    pub start: u64,
    /// One past the last byte covered.
    pub end: u64,
}

impl SackBlock {
    /// Construct a block; panics if `end < start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end >= start, "invalid SACK block {start}..{end}");
        SackBlock { start, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True for an empty block.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Maximum SACK blocks carried per segment: a 40-byte TCP option space
/// minus timestamps fits 3 blocks, 4 without — real stacks and the
/// paper's traces never exceed 4, so the simulator caps there too.
pub const SACK_CAP: usize = 4;

/// A fixed-capacity, inline list of SACK blocks — the allocation-free
/// replacement for `Vec<SackBlock>` on the per-segment hot path.
///
/// Blocks are ordered **most recent first**, as real stacks generate them
/// (RFC 2018 §4); when a `dsack` flag accompanies the list, `self[0]` is
/// the DSACK and consumers slice `&list[1..]` for the real blocks. The
/// list derefs to `[SackBlock]`, so slicing, iteration and `first()` all
/// work as they did on the `Vec`.
#[derive(Clone, Copy)]
pub struct SackList {
    len: u8,
    blocks: [SackBlock; SACK_CAP],
}

impl SackList {
    /// The empty list (also what [`SackList::default`] returns).
    pub const EMPTY: SackList = SackList {
        len: 0,
        blocks: [SackBlock { start: 0, end: 0 }; SACK_CAP],
    };

    /// An empty list.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Append a block (the *next-most-recent* in the most-recent-first
    /// order). Builders emit blocks newest-first, so when the list is full
    /// the appended block is the oldest of the bunch and is dropped —
    /// exactly the wire behaviour of a full SACK option.
    pub fn push(&mut self, b: SackBlock) {
        if (self.len as usize) < SACK_CAP {
            self.blocks[self.len as usize] = b;
            self.len += 1;
        }
    }

    /// Insert a block at the front (a *newer* block arriving on an
    /// already-built list). When full, the back — the oldest block — is
    /// evicted.
    pub fn push_front(&mut self, b: SackBlock) {
        let keep = (self.len as usize).min(SACK_CAP - 1);
        self.blocks.copy_within(0..keep, 1);
        self.blocks[0] = b;
        self.len = (keep + 1) as u8;
    }

    /// Remove all blocks.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl Default for SackList {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl std::ops::Deref for SackList {
    type Target = [SackBlock];
    fn deref(&self) -> &[SackBlock] {
        &self.blocks[..self.len as usize]
    }
}

impl std::fmt::Debug for SackList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for SackList {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for SackList {}

impl std::hash::Hash for SackList {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state)
    }
}

impl PartialEq<Vec<SackBlock>> for SackList {
    fn eq(&self, other: &Vec<SackBlock>) -> bool {
        **self == other[..]
    }
}

impl PartialEq<SackList> for Vec<SackBlock> {
    fn eq(&self, other: &SackList) -> bool {
        self[..] == **other
    }
}

impl PartialEq<[SackBlock]> for SackList {
    fn eq(&self, other: &[SackBlock]) -> bool {
        **self == *other
    }
}

impl FromIterator<SackBlock> for SackList {
    /// Collect in append order (newest first); blocks beyond
    /// [`SACK_CAP`] — the oldest — are dropped.
    fn from_iter<I: IntoIterator<Item = SackBlock>>(iter: I) -> Self {
        let mut list = SackList::new();
        for b in iter {
            list.push(b);
        }
        list
    }
}

impl From<Vec<SackBlock>> for SackList {
    fn from(v: Vec<SackBlock>) -> Self {
        v.into_iter().collect()
    }
}

impl<const N: usize> From<[SackBlock; N]> for SackList {
    fn from(v: [SackBlock; N]) -> Self {
        v.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a SackList {
    type Item = &'a SackBlock;
    type IntoIter = std::slice::Iter<'a, SackBlock>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// One captured packet, reduced to the TCP fields TAPO's analysis needs.
///
/// Sequence and acknowledgment numbers are *relative stream offsets* for the
/// respective direction (data bytes only; SYN/FIN do not consume offsets
/// here — the pcap layer handles wire-format adjustment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Capture timestamp at the server NIC.
    pub t: SimTime,
    /// Direction relative to the server.
    pub dir: Direction,
    /// Stream offset of the first payload byte (sender's direction).
    pub seq: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Header flags.
    pub flags: SegFlags,
    /// Cumulative acknowledgment: stream offset expected next from the peer.
    pub ack: u64,
    /// Advertised receive window in bytes.
    pub rwnd: u64,
    /// SACK blocks (first may be a DSACK when `dsack` is set), most recent
    /// first as generated by real stacks. Stored inline — a `TraceRecord`
    /// never touches the heap.
    pub sack: SackList,
    /// Whether `sack[0]` is a DSACK (duplicate-SACK, RFC 2883).
    pub dsack: bool,
}

/// A consumer of [`TraceRecord`]s delivered in capture (time) order.
///
/// Producers (the flow simulator, pcap readers) emit records one at a time;
/// a sink either materializes them (a [`crate::flow::FlowTrace`]) or folds
/// them into running state (a streaming analyzer) without retaining the
/// trace. Tee into two sinks at once with a `(A, B)` tuple.
pub trait RecordSink {
    /// Accept the next record. Records arrive in non-decreasing time order.
    fn record(&mut self, rec: &TraceRecord);
}

impl<A: RecordSink, B: RecordSink> RecordSink for (A, B) {
    fn record(&mut self, rec: &TraceRecord) {
        self.0.record(rec);
        self.1.record(rec);
    }
}

/// The null sink: discards every record. For runs that only need the
/// simulator's aggregate outcome (latencies, sender/link stats) — sweeps
/// where neither a trace nor an analysis is ever read.
impl RecordSink for () {
    fn record(&mut self, _rec: &TraceRecord) {}
}

impl TraceRecord {
    /// A minimal data segment record.
    pub fn data(t: SimTime, dir: Direction, seq: u64, len: u32, ack: u64, rwnd: u64) -> Self {
        TraceRecord {
            t,
            dir,
            seq,
            len,
            flags: SegFlags::ACK,
            ack,
            rwnd,
            sack: SackList::new(),
            dsack: false,
        }
    }

    /// A pure-ACK record.
    pub fn pure_ack(t: SimTime, dir: Direction, ack: u64, rwnd: u64) -> Self {
        Self::data(t, dir, 0, 0, ack, rwnd)
    }

    /// True if the record carries payload.
    pub fn has_data(&self) -> bool {
        self.len > 0
    }

    /// The stream offset one past the last payload byte.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::In.flip(), Direction::Out);
        assert_eq!(Direction::Out.flip(), Direction::In);
    }

    #[test]
    fn seq_end_and_has_data() {
        let r = TraceRecord::data(SimTime::ZERO, Direction::Out, 1000, 1448, 0, 65535);
        assert!(r.has_data());
        assert_eq!(r.seq_end(), 2448);
        let a = TraceRecord::pure_ack(SimTime::ZERO, Direction::In, 2448, 65535);
        assert!(!a.has_data());
    }

    #[test]
    #[should_panic(expected = "invalid SACK block")]
    fn sack_block_rejects_reversed() {
        let _ = SackBlock::new(10, 5);
    }

    fn blk(i: u64) -> SackBlock {
        SackBlock::new(i * 100, i * 100 + 10)
    }

    #[test]
    fn sack_list_is_inline_not_heap_backed() {
        // The whole point of SackList: the blocks live inside the struct.
        // A heap-backed Vec would be 24 bytes regardless of capacity; the
        // inline list must be at least CAP blocks wide, and its block
        // storage must sit within the struct's own memory.
        assert!(std::mem::size_of::<SackList>() >= SACK_CAP * std::mem::size_of::<SackBlock>());
        let list: SackList = [blk(1), blk(2)].into();
        let base = &list as *const SackList as usize;
        let first = list.as_ptr() as usize;
        assert!(
            first >= base && first < base + std::mem::size_of::<SackList>(),
            "block storage must be inline"
        );
        // And it must be Copy — compile-time proof of allocation freedom.
        let copy = list;
        assert_eq!(copy, list);
    }

    #[test]
    fn sack_list_push_saturates_dropping_oldest() {
        // Builders append newest-first; the 5th (oldest) block is dropped.
        let list: SackList = (1..=5).map(blk).collect();
        assert_eq!(list.len(), SACK_CAP);
        assert_eq!(*list, [blk(1), blk(2), blk(3), blk(4)][..]);
    }

    #[test]
    fn sack_list_push_front_evicts_oldest_on_overflow() {
        // A newer block arriving on a full list evicts the back (oldest).
        let mut list: SackList = (1..=4).map(blk).collect();
        list.push_front(blk(5));
        assert_eq!(list.len(), SACK_CAP);
        assert_eq!(*list, [blk(5), blk(1), blk(2), blk(3)][..]);
        assert!(!list.contains(&blk(4)), "oldest block evicted");
    }

    #[test]
    fn sack_list_dsack_first_slicing() {
        // The DSACK-first convention consumers rely on (`&sack[1..]` skips
        // the DSACK): slicing works through Deref exactly like a Vec.
        let dsack = blk(9);
        let mut list = SackList::new();
        list.push(dsack);
        list.push(blk(1));
        list.push(blk(2));
        assert_eq!(list.first(), Some(&dsack));
        assert_eq!(list[1..], [blk(1), blk(2)][..]);
        assert!(list.iter().any(|b| *b == blk(2)));
    }

    #[test]
    fn sack_list_equality_ignores_spare_capacity() {
        let mut a = SackList::new();
        a.push(blk(1));
        a.push(blk(2));
        a.push(blk(3));
        a.clear();
        a.push(blk(7));
        let mut b = SackList::new();
        b.push(blk(7));
        assert_eq!(a, b);
        assert_eq!(a, vec![blk(7)]);
    }
}

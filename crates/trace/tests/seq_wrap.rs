//! Seeded property test: 32-bit wire sequence wraparound.
//!
//! The pcap reader unwraps wire sequence numbers to ISN-relative 64-bit
//! stream offsets. A flow whose ISN sits anywhere in the 32-bit space —
//! including just below `0xffff_ffff`, so data crosses the wrap — must
//! produce monotonically non-decreasing 64-bit offsets that match the
//! ground-truth cumulative byte count on both directions, acks included.

use simnet::rng::SimRng;
use simnet::time::SimTime;
use tcp_trace::pcap::{RawRecord, SeqTracker};
use tcp_trace::record::{Direction, SegFlags};

/// Drive one synthetic flow through a [`SeqTracker`]: client SYN / server
/// SYN-ACK with the given ISNs, then `segs` server data segments of random
/// size, each acked by the client. Returns the maximum absolute error
/// between translated offsets and ground truth (0 = perfect).
fn run_flow(rng: &mut SimRng, isn_out: u32, isn_in: u32, segs: usize) {
    let mut tr = SeqTracker::new();
    let mut t_us = 0u64;
    let next = |t_us: &mut u64| {
        *t_us += 100;
        SimTime::from_micros(*t_us)
    };

    let syn = RawRecord::new(Direction::In, isn_in, 0, SegFlags::SYN, 512, 0);
    let rec = tr.translate(next(&mut t_us), &syn).unwrap();
    assert_eq!(rec.seq, 0);
    let synack = RawRecord::new(
        Direction::Out,
        isn_out,
        isn_in.wrapping_add(1),
        SegFlags::SYN_ACK,
        512,
        0,
    );
    let rec = tr.translate(next(&mut t_us), &synack).unwrap();
    assert_eq!(rec.seq, 0);
    assert_eq!(rec.ack, 0);

    let mut off = 0u64; // ground-truth outbound stream offset
    let mut prev_seq = 0u64;
    for _ in 0..segs {
        let len = rng.range_u64(1, 1449) as u32;
        // Occasionally retransmit the previous segment start instead of
        // advancing — unwrapping must stay stable for offsets slightly
        // behind the anchor too.
        let retransmit = rng.chance(0.1) && off > 0;
        let (seq_off, seg_len) = if retransmit {
            (off.saturating_sub(len as u64), len)
        } else {
            let s = off;
            off += len as u64;
            (s, len)
        };
        let seq32 = isn_out.wrapping_add(1).wrapping_add(seq_off as u32);
        let data = RawRecord::new(
            Direction::Out,
            seq32,
            isn_in.wrapping_add(1),
            SegFlags::ACK,
            512,
            seg_len,
        );
        let rec = tr.translate(next(&mut t_us), &data).unwrap();
        assert_eq!(rec.seq, seq_off, "outbound offset mismatch");
        // New transmissions never move backwards past the prior new data.
        if !retransmit {
            assert!(rec.seq >= prev_seq, "fresh offsets must be monotonic");
            prev_seq = rec.seq;
        }

        // Client acks everything so far; the ack is in the *peer's*
        // (outbound) space and must unwrap to the same offset.
        let ack32 = isn_out.wrapping_add(1).wrapping_add(off as u32);
        let mut ack = RawRecord::new(
            Direction::In,
            isn_in.wrapping_add(1),
            ack32,
            SegFlags::ACK,
            512,
            0,
        );
        if rng.chance(0.3) {
            // SACK a block just above the cumulative ack (also peer space).
            let s = off + 1448;
            let e = s + 1448;
            ack.push_sack32(
                isn_out.wrapping_add(1).wrapping_add(s as u32),
                isn_out.wrapping_add(1).wrapping_add(e as u32),
            );
        }
        let rec = tr.translate(next(&mut t_us), &ack).unwrap();
        assert_eq!(rec.ack, off, "ack offset mismatch");
        if let Some(b) = rec.sack.first() {
            assert_eq!(b.start, off + 1448, "sack start mismatch");
            assert_eq!(b.end, off + 1448 * 2, "sack end mismatch");
        }
    }
}

#[test]
fn wraparound_offsets_stay_monotonic_seeded() {
    let rng = SimRng::seed(0x5eed_0001);
    for trial in 0..200u64 {
        let mut sub = rng.fork(trial);
        // Bias ISNs toward the wrap boundary so most trials actually cross
        // 0xffff_ffff within ~100 segments (~100 KiB of stream).
        let isn_out = if sub.chance(0.7) {
            (0xffff_ffffu64 - sub.range_u64(0, 200_000)) as u32
        } else {
            sub.next_u32()
        };
        let isn_in = if sub.chance(0.5) {
            (0xffff_ffffu64 - sub.range_u64(0, 1_000)) as u32
        } else {
            sub.next_u32()
        };
        let segs = sub.range_u64(20, 120) as usize;
        run_flow(&mut sub, isn_out, isn_in, segs);
    }
}

#[test]
fn deterministic_boundary_crossing() {
    // A fixed flow placed so segment 3 straddles 0xffff_ffff exactly.
    let mut rng = SimRng::seed(7);
    run_flow(&mut rng, 0xffff_f000, 0xffff_fffe, 50);
}

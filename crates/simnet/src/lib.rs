//! # simnet — deterministic discrete-event network simulation substrate
//!
//! This crate provides the network substrate used to synthesize the traffic
//! that the TAPO analyzer (crate `tapo`) studies, replacing the production
//! network of the paper *"Demystifying and Mitigating TCP Stalls at the
//! Server Side"* (CoNEXT 2015).
//!
//! Everything here is **deterministic given a seed**: the event queue breaks
//! timestamp ties by insertion sequence number, and all randomness flows
//! from explicitly-seeded [`rng::SimRng`] instances. Re-running a simulation
//! with the same seed reproduces the exact same packet trace, which is what
//! makes the paired mechanism comparisons of Tables 8 and 9 meaningful.
//!
//! Components:
//!
//! * [`time`] — µs-resolution [`time::SimTime`] / [`time::SimDuration`].
//! * [`rng`] — seeded small-state RNG plus distribution helpers
//!   (lognormal, bounded Pareto, empirical CDFs).
//! * [`loss`] — packet loss processes: Bernoulli, bursty Gilbert–Elliott,
//!   and scripted drop lists for packetdrill-style unit tests.
//! * [`link`] — a unidirectional link: propagation delay, serialization at
//!   a configured bandwidth, a drop-tail queue, optional jitter and
//!   reordering.
//! * [`event`] — the deterministic event queue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod link;
pub mod loss;
pub mod par;
pub mod rng;
pub mod time;

pub use event::EventQueue;
pub use link::{Link, LinkConfig};
pub use loss::{LossModel, LossSpec};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

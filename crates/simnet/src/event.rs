//! The deterministic event queue.
//!
//! A bucketed **calendar queue** keyed by `(SimTime, insertion sequence)`.
//! The secondary key makes pop order fully deterministic even when many
//! events share a timestamp, which (together with seeded RNGs) guarantees
//! bitwise reproducible simulations.
//!
//! ## Why a calendar queue
//!
//! The per-flow simulation pushes and pops an event per simulated packet;
//! a `BinaryHeap` pays `O(log n)` sift comparisons on every operation. The
//! calendar queue exploits the structure of simulation time instead:
//! events cluster within an RTT of `now`, so hashing each event into a
//! fixed ring of 1ms-wide time buckets makes push `O(1)` and pop `O(1)`
//! amortized (the cursor sweeps each bucket once per window).
//!
//! ## Layout
//!
//! * `buckets` — a ring of `N_BUCKETS` slots, each `BUCKET_US` wide,
//!   covering the *current year* `[year_base, year_base + N_BUCKETS)` in
//!   absolute bucket numbers (`t >> BUCKET_BITS`).
//! * `far` — events beyond the current year, held unsorted. Every far
//!   event is strictly later than every bucketed event, so `far` is only
//!   consulted when the whole ring drains; redistribution then re-bases
//!   the year at the earliest far event (`O(|far|)`, amortized over the
//!   window that just drained).
//! * The cursor's bucket is kept sorted **descending** by `(at, seq)` so
//!   the next event pops from the back in `O(1)`; other buckets stay
//!   unsorted (append-only) and are sorted once when the cursor reaches
//!   them. Same-bucket pushes during the drain binary-search their slot,
//!   preserving exact FIFO order among simultaneous events.
//! * Payloads live in a **slab** (`Vec<Option<E>>` plus a free list) and
//!   the buckets hold only 24-byte `(at, seq, idx)` keys. Event payloads
//!   in this codebase are fat (a queued `Segment` is >100 bytes), and
//!   every bucket sort, mid-drain insert, and far-redistribution moves
//!   entries around — moving 24-byte keys instead of whole payloads keeps
//!   those memmoves cheap. A payload is written once on push and read
//!   once on pop.
//!
//! Determinism is untouched: pop order is *exactly* ascending `(at, seq)`,
//! the same total order the old heap produced — verified by a differential
//! test against a reference `BinaryHeap` implementation below.

use crate::time::SimTime;

/// log2 of the bucket width in microseconds (1024µs ≈ 1ms — finer than
/// the delayed-ACK timer, coarser than per-packet serialization gaps).
const BUCKET_BITS: u32 = 12;
/// Ring size; with 1ms buckets the year spans ~1.05s. Timer re-arms (RTO
/// deadlines 200ms–1s out) are the single biggest event class the flow
/// simulation schedules, and they must land *inside* the ring: with the
/// previous 256-bucket (~262ms) ring, two thirds of all pushes overflowed
/// into `far` and paid redistribution churn on every ring drain.
const N_BUCKETS: usize = 1024;

/// A bucket entry: the ordering key plus the slab index of the payload.
#[derive(Debug, Clone, Copy)]
struct Slot {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl Slot {
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

fn bucket_of(at: SimTime) -> u64 {
    at.as_micros() >> BUCKET_BITS
}

/// A deterministic calendar queue of timestamped events.
///
/// Popping returns events in nondecreasing time order; ties are broken by
/// insertion order (FIFO among simultaneous events).
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The ring. Slot `b % N_BUCKETS` holds events of absolute bucket `b`
    /// for `b` within the current year only.
    buckets: Vec<Vec<Slot>>,
    /// Payload storage; bucket entries index into it. `None` marks a hole
    /// waiting on the free list.
    slab: Vec<Option<E>>,
    /// Indices of holes in `slab`, reused before the slab grows.
    free: Vec<u32>,
    /// Occupancy bitmap over ring slots: bit `s` of word `s / 64` is set
    /// iff `buckets[s]` is non-empty. Events are sparse relative to the
    /// ring (a handful in flight across a 100ms RTT ≈ 100 buckets), so
    /// the cursor jumps empty spans with `trailing_zeros` instead of
    /// probing each slot.
    occupied: [u64; N_BUCKETS / 64],
    /// Events at or beyond `year_base + N_BUCKETS` (strictly later than
    /// everything in the ring), as a min-heap on `(at, seq)`. The heap
    /// keeps redistribution linear-ish: re-basing peeks the earliest far
    /// event in `O(1)` and pops only the prefix that falls inside the new
    /// year (`O(k log n)`), instead of scanning and compacting the whole
    /// overflow vector on every ring drain.
    far: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, u32)>>,
    /// Absolute bucket number where the current year begins.
    year_base: u64,
    /// Absolute bucket number the pop cursor is in (`>= year_base`).
    cursor: u64,
    /// Whether the cursor's slot has been drain-sorted (descending).
    cursor_sorted: bool,
    len: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..N_BUCKETS).map(|_| Vec::new()).collect(),
            slab: Vec::new(),
            free: Vec::new(),
            occupied: [0; N_BUCKETS / 64],
            far: std::collections::BinaryHeap::new(),
            year_base: 0,
            cursor: 0,
            cursor_sorted: false,
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    fn mark(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1 << (slot % 64);
    }

    fn unmark(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1 << (slot % 64));
    }

    /// First occupied ring slot at or after `from_slot` in cursor order
    /// (wrapping). Ring slots behind the cursor are drained (bits clear),
    /// so every set bit belongs to the current year ahead of the cursor.
    fn next_occupied(&self, from_slot: usize) -> Option<usize> {
        const WORDS: usize = N_BUCKETS / 64;
        let w0 = from_slot / 64;
        let shift = from_slot % 64;
        let first = self.occupied[w0] & (!0u64 << shift);
        if first != 0 {
            return Some(w0 * 64 + first.trailing_zeros() as usize);
        }
        for k in 1..WORDS {
            let w = (w0 + k) % WORDS;
            if self.occupied[w] != 0 {
                return Some(w * 64 + self.occupied[w].trailing_zeros() as usize);
            }
        }
        let wrapped = self.occupied[w0] & !(!0u64 << shift);
        if wrapped != 0 {
            return Some(w0 * 64 + wrapped.trailing_zeros() as usize);
        }
        None
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics in debug builds if `at` is in the past — a simulation that
    /// schedules into the past has a logic error that must not be masked.
    /// The message reports how far behind the clock the event landed.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {} (event is {} behind the clock)",
            self.now,
            self.now.saturating_since(at),
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(event);
                i
            }
            None => {
                self.slab.push(Some(event));
                (self.slab.len() - 1) as u32
            }
        };
        let entry = Slot { at, seq, idx };
        let b = bucket_of(at);
        if b >= self.year_base + N_BUCKETS as u64 {
            self.far.push(std::cmp::Reverse((at, seq, idx)));
            return;
        }
        let s = (b % N_BUCKETS as u64) as usize;
        let slot = &mut self.buckets[s];
        if b == self.cursor && self.cursor_sorted {
            // The slot is mid-drain, sorted descending: keep it sorted.
            // The new entry has the largest seq so far, so it lands
            // *after* any equal-time entries in pop order (FIFO).
            let key = (at, seq);
            let pos = slot.partition_point(|e| e.key() > key);
            slot.insert(pos, entry);
        } else {
            slot.push(entry);
        }
        self.mark(s);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let cur_slot = (self.cursor % N_BUCKETS as u64) as usize;
            if let Some(s) = self.next_occupied(cur_slot) {
                let delta = (s + N_BUCKETS - cur_slot) % N_BUCKETS;
                if delta != 0 {
                    self.cursor += delta as u64;
                    self.cursor_sorted = false;
                }
                debug_assert!(self.cursor < self.year_base + N_BUCKETS as u64);
                if !self.cursor_sorted {
                    self.buckets[s].sort_by_key(|e| std::cmp::Reverse(e.key()));
                    self.cursor_sorted = true;
                }
                let entry = self.buckets[s].pop().expect("non-empty slot");
                if self.buckets[s].is_empty() {
                    self.unmark(s);
                }
                self.len -= 1;
                self.now = entry.at;
                let event = self.slab[entry.idx as usize]
                    .take()
                    .expect("slab slot occupied");
                self.free.push(entry.idx);
                return Some((entry.at, event));
            }
            // Ring drained: re-base the year at the earliest far event and
            // pull everything that now falls inside the ring back in. The
            // in-window events form a prefix of the heap's `(at, seq)`
            // order (`bucket_of` is monotone in `at`), so popping until
            // the first out-of-window event moves exactly the right set.
            debug_assert!(!self.far.is_empty(), "len > 0 but no events anywhere");
            let new_base = bucket_of(self.far.peek().expect("far is non-empty").0 .0);
            self.year_base = new_base;
            self.cursor = new_base;
            self.cursor_sorted = false;
            let new_end = new_base + N_BUCKETS as u64;
            while let Some(&std::cmp::Reverse((at, seq, idx))) = self.far.peek() {
                let b = bucket_of(at);
                if b >= new_end {
                    break;
                }
                self.far.pop();
                let s = (b % N_BUCKETS as u64) as usize;
                self.buckets[s].push(Slot { at, seq, idx });
                self.mark(s);
            }
        }
    }

    /// Timestamp of the next event without popping it. `O(ring)` — kept
    /// for inspection and tests; the simulation hot loop never calls it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let cur_slot = (self.cursor % N_BUCKETS as u64) as usize;
        if let Some(s) = self.next_occupied(cur_slot) {
            let slot = &self.buckets[s];
            let t = if s == cur_slot && self.cursor_sorted {
                slot.last().expect("non-empty").at
            } else {
                slot.iter().map(|e| e.key()).min().expect("non-empty").0
            };
            return Some(t);
        }
        self.far.peek().map(|&std::cmp::Reverse((at, _, _))| at)
    }

    /// Rewind the queue to the fresh state of [`EventQueue::new`] — clock
    /// at zero, sequence counter at zero, no pending events — while keeping
    /// every allocation (the payload slab, free list, ring bucket vectors
    /// and far overflow) for the next simulation. Behaviour after `reset()`
    /// is indistinguishable from a brand-new queue: with the slab and free
    /// list cleared, payload indices are handed out in the same order a
    /// fresh queue would use, so pop order (and everything derived from it)
    /// is bit-identical.
    pub fn reset(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.slab.clear();
        self.free.clear();
        self.occupied = [0; N_BUCKETS / 64];
        self.far.clear();
        self.year_base = 0;
        self.cursor = 0;
        self.cursor_sorted = false;
        self.len = 0;
        self.next_seq = 0;
        self.now = SimTime::ZERO;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The pre-calendar-queue reference implementation: a plain binary heap on
/// `Reverse<(at, seq)>`. Kept (test-only) as the oracle for the
/// differential test — the calendar queue must reproduce its pop order
/// exactly, ties included.
#[cfg(test)]
mod reference {
    use super::SimTime;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    pub struct HeapQueue<E> {
        heap: BinaryHeap<Reverse<(SimTime, u64, WrapNoOrd<E>)>>,
        next_seq: u64,
        now: SimTime,
    }

    /// Shields the event payload from participating in heap ordering.
    pub struct WrapNoOrd<E>(pub E);
    impl<E> PartialEq for WrapNoOrd<E> {
        fn eq(&self, _: &Self) -> bool {
            true
        }
    }
    impl<E> Eq for WrapNoOrd<E> {}
    impl<E> PartialOrd for WrapNoOrd<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for WrapNoOrd<E> {
        fn cmp(&self, _: &Self) -> std::cmp::Ordering {
            std::cmp::Ordering::Equal
        }
    }

    impl<E> HeapQueue<E> {
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }

        pub fn push(&mut self, at: SimTime, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap
                .push(Reverse((at.max(self.now), seq, WrapNoOrd(event))));
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let Reverse((at, _, WrapNoOrd(event))) = self.heap.pop()?;
            self.now = at;
            Some((at, event))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        q.push(SimTime::from_millis(25), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(25));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 1);
        let (t, _) = q.pop().unwrap();
        q.push(t + SimDuration::from_millis(5), 2);
        q.push(t + SimDuration::from_millis(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn events_beyond_the_ring_pop_in_order() {
        // Stress the far path: events many years apart, interleaved with
        // near events, including exact ring-boundary times.
        let mut q = EventQueue::new();
        let year = SimDuration::from_micros((N_BUCKETS as u64) << BUCKET_BITS);
        q.push(SimTime::ZERO + year + year, "far2");
        q.push(SimTime::from_millis(1), "near");
        q.push(SimTime::ZERO + year, "far1");
        q.push(SimTime::ZERO + year, "far1b");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far1");
        assert_eq!(q.pop().unwrap().1, "far1b");
        assert_eq!(q.pop().unwrap().1, "far2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_sees_ring_and_far_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(10), "far");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));
        q.push(SimTime::from_millis(3), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "event is 5.000ms behind the clock")]
    fn push_into_the_past_reports_time_delta() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        q.pop();
        q.push(SimTime::from_millis(5), ());
    }

    /// Deterministic xorshift64* — good enough to generate adversarial
    /// schedules without pulling in an RNG dependency.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn reset_queue_is_indistinguishable_from_fresh() {
        // Run a random schedule (leaving events pending), reset, then run a
        // second random schedule through both the recycled queue and a
        // brand-new one: pop sequences, clocks and lengths must match
        // exactly — including seq-numbered tie-breaks and far-ring rebasing.
        for seed in 1..=10u64 {
            let mut recycled = EventQueue::new();
            // Dirty the queue: pending near events, far events, popped holes.
            let mut rng = Rng(seed);
            for _ in 0..500 {
                let r = rng.next();
                if !r.is_multiple_of(3) {
                    let delay = rng.next() % 3_000_000;
                    let at = recycled.now() + SimDuration::from_micros(delay);
                    recycled.push(at, r);
                } else {
                    recycled.pop();
                }
            }
            assert!(!recycled.is_empty(), "dirtying left events pending");
            recycled.reset();
            assert!(recycled.is_empty());
            assert_eq!(recycled.now(), SimTime::ZERO);
            assert_eq!(recycled.peek_time(), None);

            let mut fresh = EventQueue::new();
            let mut rng_a = Rng(seed.wrapping_mul(77));
            let mut rng_b = Rng(seed.wrapping_mul(77));
            let drive = |q: &mut EventQueue<u64>, rng: &mut Rng| {
                let mut popped = Vec::new();
                for _ in 0..2000 {
                    let r = rng.next();
                    if r % 100 < 60 {
                        let delay = rng.next() % 5_000_000;
                        let at = q.now() + SimDuration::from_micros(delay);
                        q.push(at, r);
                    } else {
                        popped.push(q.pop());
                    }
                }
                while let Some(p) = q.pop() {
                    popped.push(Some(p));
                }
                popped
            };
            let a = drive(&mut recycled, &mut rng_a);
            let b = drive(&mut fresh, &mut rng_b);
            assert_eq!(a, b, "reset-vs-fresh divergence for seed {seed}");
        }
    }

    #[test]
    fn differential_vs_binary_heap_reference() {
        // Identical random push/pop schedules through the calendar queue
        // and the old BinaryHeap must produce identical pop sequences —
        // including FIFO order among same-time ties.
        for seed in 1..=20u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut cal = EventQueue::new();
            let mut heap = reference::HeapQueue::new();
            let mut popped = Vec::new();
            let mut expected = Vec::new();
            let mut next_id = 0u64;
            for _ in 0..4000 {
                let r = rng.next();
                if r % 100 < 60 {
                    // Push: delays drawn from a mix of scales — ties (0),
                    // sub-bucket, intra-ring, and beyond-the-ring jumps.
                    let delay = match r % 7 {
                        0 => 0,
                        1 => rng.next() % 3,
                        2 => rng.next() % 1_000,
                        3 => rng.next() % 100_000,
                        4 => rng.next() % 300_000,
                        5 => rng.next() % 2_000_000,
                        _ => 500_000 + rng.next() % 10_000_000,
                    };
                    let at = cal.now() + SimDuration::from_micros(delay);
                    cal.push(at, next_id);
                    heap.push(at, next_id);
                    next_id += 1;
                } else {
                    popped.extend(cal.pop());
                    expected.extend(heap.pop());
                }
            }
            while let Some(p) = cal.pop() {
                popped.push(p);
            }
            while let Some(p) = heap.pop() {
                expected.push(p);
            }
            assert_eq!(popped, expected, "divergence for seed {seed}");
            assert!(cal.is_empty());
        }
    }
}

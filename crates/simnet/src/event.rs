//! The deterministic event queue.
//!
//! A thin priority queue keyed by `(SimTime, insertion sequence)`. The
//! secondary key makes pop order fully deterministic even when many events
//! share a timestamp, which (together with seeded RNGs) guarantees bitwise
//! reproducible simulations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic min-heap of timestamped events.
///
/// Popping returns events in nondecreasing time order; ties are broken by
/// insertion order (FIFO among simultaneous events).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Panics in debug builds if `at` is in the past — a simulation that
    /// schedules into the past has a logic error that must not be masked.
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            at: at.max(self.now),
            seq,
            event,
        }));
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), "c");
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        q.push(SimTime::from_millis(25), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(25));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 1);
        let (t, _) = q.pop().unwrap();
        q.push(t + SimDuration::from_millis(5), 2);
        q.push(t + SimDuration::from_millis(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.is_empty());
    }
}

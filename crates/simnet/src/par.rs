//! Deterministic parallel map over an index range.
//!
//! The flow engine shards work across threads, but every experiment must
//! produce *bit-identical* output at any thread count. [`par_map`]
//! guarantees that by construction: each index's work is an independent
//! closure call, results land in their index's slot, and the returned `Vec`
//! is always in index order — the thread schedule can only change timing,
//! never placement. Work is pulled from a shared atomic counter, so uneven
//! per-item cost (heavy-tailed flow sizes) still load-balances.
//!
//! Implemented with `std::thread::scope` and per-slot mutexes only — the
//! crate forbids `unsafe` and builds without external dependencies. Each
//! slot's mutex is locked exactly once (uncontended), so the cost per item
//! is a few atomic operations — negligible next to a flow simulation.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The parallelism to default to when the caller does not specify one:
/// `std::thread::available_parallelism()`, or 1 if it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Apply `f` to every index in `0..n` on up to `threads` worker threads and
/// return the results **in index order**. With `threads <= 1` (or `n <= 1`)
/// this runs inline on the caller's thread; the output is identical either
/// way, because each call of `f` depends only on its index.
///
/// Panics in `f` are propagated to the caller after the scope unwinds.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(n, threads, || (), |i, ()| f(i))
}

/// Indices claimed per atomic fetch in [`par_map_with`]: large enough to
/// amortize the shared counter and the per-chunk lock (and to keep adjacent
/// workers off adjacent slots — no false sharing on a hot slot array),
/// small enough that a heavy-tailed item at the end of the range still
/// load-balances across workers.
const CHUNK: usize = 16;

/// [`par_map`] with per-worker mutable scratch: every worker calls `init()`
/// once and then sees `&mut scratch` on each item it claims, so expensive
/// arenas (event slabs, replay maps) are recycled across the thousands of
/// items a worker processes instead of being reallocated per item.
///
/// The bit-identical-at-any-thread-count guarantee of [`par_map`] is
/// preserved **provided `f` leaves no observable state in the scratch** —
/// i.e. `f(i, s)` returns the same value whether `s` is fresh from `init()`
/// or recycled from any sequence of previous calls. Scratch users uphold
/// this by fully resetting recycled state on entry (see
/// `EventQueue::reset` and the scratch-hygiene differential tests); under
/// that contract, which indices share a scratch (the thread schedule) can
/// change timing but never results, and results always land in index order.
///
/// Work is claimed in chunks of [`CHUNK`] consecutive indices from the
/// shared counter, cutting per-item atomic traffic by the chunk width; one
/// result vector per chunk means one uncontended lock per chunk instead of
/// one per item. With `threads <= 1` (or `n <= 1`) the whole range runs
/// inline on the caller's thread against a single scratch — exactly what a
/// one-worker schedule would do.
///
/// Panics in `f` are propagated to the caller after the scope unwinds.
pub fn par_map_with<T, S, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        let mut scratch = init();
        return (0..n).map(|i| f(i, &mut scratch)).collect();
    }

    let n_chunks = n.div_ceil(CHUNK);
    let slots: Vec<Mutex<Vec<T>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let start = c * CHUNK;
                    let end = (start + CHUNK).min(n);
                    let mut buf = Vec::with_capacity(end - start);
                    for i in start..end {
                        buf.push(f(i, &mut scratch));
                    }
                    // Each chunk is claimed exactly once, so the slot is free.
                    *slots[c].lock().expect("chunk lock") = buf;
                }
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        let chunk = slot.into_inner().expect("chunk lock");
        debug_assert!(!chunk.is_empty(), "every chunk was claimed");
        out.extend(chunk);
    }
    debug_assert_eq!(out.len(), n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = par_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let serial = par_map(257, 1, |i| {
            let mut rng = crate::rng::SimRng::seed(i as u64);
            rng.next_u64()
        });
        for threads in [2, 3, 8] {
            let parallel = par_map(257, threads, |i| {
                let mut rng = crate::rng::SimRng::seed(i as u64);
                rng.next_u64()
            });
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(par_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 4, |i| i + 1), vec![1]);
        assert_eq!(par_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn scratch_map_preserves_index_order_across_thread_counts() {
        // A well-behaved f (resets its scratch on entry) must produce
        // identical output at any thread count, chunk boundaries included.
        let reference: Vec<u64> = (0..1000u64).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 33] {
            let out = par_map_with(1000, threads, Vec::<u64>::new, |i, scratch| {
                scratch.clear(); // full reset: no state leaks between items
                scratch.extend([i as u64, i as u64 * 2]);
                scratch.iter().sum::<u64>() + 1
            });
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // Serial path: one scratch across the whole range.
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let out = par_map_with(
            10,
            1,
            || {
                calls.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |i, seen| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(calls.load(Ordering::SeqCst), 1, "one scratch for the range");
        // The scratch visibly accumulates across calls within the worker.
        assert_eq!(out.last(), Some(&(9, 10)));
    }

    #[test]
    fn scratch_map_handles_empty_tiny_and_chunk_edges() {
        assert_eq!(par_map_with(0, 4, || (), |i, ()| i), Vec::<usize>::new());
        for n in [1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK] {
            let out = par_map_with(n, 4, || (), |i, ()| i);
            assert_eq!(out, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }
}

//! Deterministic parallel map over an index range.
//!
//! The flow engine shards work across threads, but every experiment must
//! produce *bit-identical* output at any thread count. [`par_map`]
//! guarantees that by construction: each index's work is an independent
//! closure call, results land in their index's slot, and the returned `Vec`
//! is always in index order — the thread schedule can only change timing,
//! never placement. Work is pulled from a shared atomic counter, so uneven
//! per-item cost (heavy-tailed flow sizes) still load-balances.
//!
//! Implemented with `std::thread::scope` and per-slot mutexes only — the
//! crate forbids `unsafe` and builds without external dependencies. Each
//! slot's mutex is locked exactly once (uncontended), so the cost per item
//! is a few atomic operations — negligible next to a flow simulation.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The parallelism to default to when the caller does not specify one:
/// `std::thread::available_parallelism()`, or 1 if it cannot be determined.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Apply `f` to every index in `0..n` on up to `threads` worker threads and
/// return the results **in index order**. With `threads <= 1` (or `n <= 1`)
/// this runs inline on the caller's thread; the output is identical either
/// way, because each call of `f` depends only on its index.
///
/// Panics in `f` are propagated to the caller after the scope unwinds.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Each index is claimed exactly once, so the slot is free.
                *slots[i].lock().expect("slot lock") = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every index was claimed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = par_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let serial = par_map(257, 1, |i| {
            let mut rng = crate::rng::SimRng::seed(i as u64);
            rng.next_u64()
        });
        for threads in [2, 3, 8] {
            let parallel = par_map(257, threads, |i| {
                let mut rng = crate::rng::SimRng::seed(i as u64);
                rng.next_u64()
            });
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(par_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 4, |i| i + 1), vec![1]);
        assert_eq!(par_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}

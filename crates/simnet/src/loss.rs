//! Packet loss processes.
//!
//! The paper's stall taxonomy depends on the *correlation structure* of loss,
//! not just its rate: double-retransmission stalls need the same segment (or
//! its retransmission) dropped twice, and continuous-loss stalls need a whole
//! window dropped in one burst. A memoryless Bernoulli process at the
//! paper's 2–4% loss rates produces far too few of either, so the primary
//! model is a **continuous-time** Gilbert–Elliott two-state chain: the
//! bad ("burst") state persists for a configurable *duration*, matching how
//! real loss episodes (queue overflows, link errors) span wall-clock time —
//! a fast retransmission sent one RTT into a burst dies with the original,
//! while an RTO retransmission seconds later usually survives. A
//! packet-count-correlated chain would instead freeze in the bad state
//! across idle periods and absurdly kill successive backed-off
//! retransmissions.
//!
//! Scripted drop lists support deterministic packetdrill-style tests such as
//! the Fig. 8/9 scenarios.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A deterministic pseudo-random draw in `[0,1)` keyed by `(seed, time
/// bucket)`. Using *time* rather than an advancing stream makes the loss
/// field a frozen function of the wall clock: paired simulations of
/// different mechanisms over the same seed face **identical network
/// conditions** at identical times (common random numbers), instead of
/// resampling the process whenever packet timings shift.
pub(crate) fn time_hash(seed: u64, t: SimTime, bucket_us: u64) -> f64 {
    let bucket = t.as_micros() / bucket_us.max(1);
    let mut x = seed ^ bucket.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Declarative description of a loss process (serializable; becomes a
/// stateful [`LossModel`] via [`LossSpec::build`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum LossSpec {
    /// No loss at all.
    #[default]
    None,
    /// Independent loss with the given probability per packet.
    Bernoulli {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Continuous-time Gilbert–Elliott bursty loss.
    GilbertElliott {
        /// Rate of good → bad transitions, per second.
        enter_bad_hz: f64,
        /// Rate of bad → good transitions, per second (1 / mean burst
        /// duration).
        exit_bad_hz: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
    /// Drop exactly the packets whose 0-based index (per direction, in
    /// arrival order at the link) appears in the list.
    Script {
        /// Sorted or unsorted list of packet indices to drop.
        drops: Vec<u64>,
    },
}

impl LossSpec {
    /// Convenience constructor for [`LossSpec::Bernoulli`].
    pub fn bernoulli(p: f64) -> Self {
        LossSpec::Bernoulli { p }
    }

    /// A Gilbert–Elliott process calibrated to an approximate mean loss
    /// rate, with bad states lasting `burst` on average and dropping 70% of
    /// packets while active; the good state drops a small residue.
    ///
    /// Mean loss ≈ `π_bad·loss_bad + π_good·loss_good` where
    /// `π_bad = enter/(enter+exit)`; we fix `loss_bad = 0.7`,
    /// `loss_good = mean/10` and solve for the entry rate.
    pub fn bursty(mean_loss: f64, burst: SimDuration) -> Self {
        assert!((0.0..0.5).contains(&mean_loss), "mean_loss out of range");
        assert!(!burst.is_zero());
        let loss_bad = 0.7;
        let loss_good = mean_loss / 10.0;
        let exit_bad_hz = 1.0 / burst.as_secs_f64();
        let pi_b = ((mean_loss - loss_good) / (loss_bad - loss_good)).clamp(0.0, 0.95);
        let enter_bad_hz = if pi_b <= 0.0 {
            0.0
        } else {
            pi_b * exit_bad_hz / (1.0 - pi_b)
        };
        LossSpec::GilbertElliott {
            enter_bad_hz,
            exit_bad_hz,
            loss_good,
            loss_bad,
        }
    }

    /// Approximate long-run mean drop rate of the process (0 for scripts).
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossSpec::None | LossSpec::Script { .. } => 0.0,
            LossSpec::Bernoulli { p } => *p,
            LossSpec::GilbertElliott {
                enter_bad_hz,
                exit_bad_hz,
                loss_good,
                loss_bad,
            } => {
                let denom = enter_bad_hz + exit_bad_hz;
                if denom <= 0.0 {
                    *loss_good
                } else {
                    let pi_b = enter_bad_hz / denom;
                    pi_b * loss_bad + (1.0 - pi_b) * loss_good
                }
            }
        }
    }

    /// Instantiate the stateful model; `rng` seeds the burst schedule and
    /// the per-packet hash key.
    pub fn build(&self, rng: &mut SimRng) -> LossModel {
        match self {
            LossSpec::None => LossModel::None,
            LossSpec::Bernoulli { p } => LossModel::Bernoulli {
                p: p.clamp(0.0, 1.0),
                hash_seed: rng.next_u64(),
            },
            LossSpec::GilbertElliott {
                enter_bad_hz,
                exit_bad_hz,
                loss_good,
                loss_bad,
            } => LossModel::GilbertElliott {
                enter_bad_hz: enter_bad_hz.max(f64::MIN_POSITIVE),
                exit_bad_hz: exit_bad_hz.max(f64::MIN_POSITIVE),
                loss_good: loss_good.clamp(0.0, 1.0),
                loss_bad: loss_bad.clamp(0.0, 1.0),
                in_bad: false,
                next_toggle: SimTime::ZERO,
                schedule_rng: rng.fork(0x6_c055),
                hash_seed: rng.next_u64(),
            },
            LossSpec::Script { drops } => {
                let mut sorted = drops.clone();
                sorted.sort_unstable();
                sorted.dedup();
                LossModel::Script {
                    drops: sorted,
                    next_index: 0,
                    cursor: 0,
                }
            }
        }
    }
}

/// The stateful loss process; one instance per link direction.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// No loss.
    None,
    /// Independent loss (verdicts frozen per time bucket).
    Bernoulli {
        /// Per-packet drop probability.
        p: f64,
        /// Key for the time-hashed verdicts.
        hash_seed: u64,
    },
    /// Continuous-time bursty two-state loss with a precomputed wall-clock
    /// burst schedule.
    GilbertElliott {
        /// good → bad rate (per second).
        enter_bad_hz: f64,
        /// bad → good rate (per second).
        exit_bad_hz: f64,
        /// Drop probability in the good state.
        loss_good: f64,
        /// Drop probability in the bad state.
        loss_bad: f64,
        /// Current scheduled state.
        in_bad: bool,
        /// When the current state ends.
        next_toggle: SimTime,
        /// Dedicated stream generating the burst schedule (never perturbed
        /// by packet arrivals).
        schedule_rng: SimRng,
        /// Key for the time-hashed in-state verdicts.
        hash_seed: u64,
    },
    /// Scripted drops by packet index.
    Script {
        /// Sorted, deduplicated drop indices.
        drops: Vec<u64>,
        /// Index of the next packet to be offered.
        next_index: u64,
        /// Cursor into `drops`.
        cursor: usize,
    },
}

impl LossModel {
    /// Decide whether a packet offered to the link at time `now` is
    /// dropped. For the Gilbert–Elliott model the verdict is a pure
    /// function of `now` and the build-time seed (the burst schedule is
    /// precomputed in wall-clock time), so paired runs share conditions.
    pub fn should_drop(&mut self, now: SimTime, _rng: &mut SimRng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p, hash_seed } => time_hash(*hash_seed, now, 400) < *p,
            LossModel::GilbertElliott {
                enter_bad_hz,
                exit_bad_hz,
                loss_good,
                loss_bad,
                in_bad,
                next_toggle,
                schedule_rng,
                hash_seed,
            } => {
                // Lazily roll the wall-clock schedule forward to `now`:
                // `next_toggle` is when the current state ends.
                if *next_toggle == SimTime::ZERO {
                    // First query: draw the initial good-state dwell.
                    let dwell = schedule_rng.exponential(1.0 / *enter_bad_hz);
                    *next_toggle = SimTime::ZERO
                        + SimDuration::from_secs_f64(dwell).max(SimDuration::from_micros(1));
                }
                while now >= *next_toggle {
                    *in_bad = !*in_bad;
                    let rate = if *in_bad { *exit_bad_hz } else { *enter_bad_hz };
                    let dwell = schedule_rng.exponential(1.0 / rate);
                    *next_toggle +=
                        SimDuration::from_secs_f64(dwell).max(SimDuration::from_micros(1));
                }
                let p = if *in_bad { *loss_bad } else { *loss_good };
                time_hash(*hash_seed, now, 400) < p
            }
            LossModel::Script {
                drops,
                next_index,
                cursor,
            } => {
                let idx = *next_index;
                *next_index += 1;
                if *cursor < drops.len() && drops[*cursor] == idx {
                    *cursor += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Offer packets at a fixed spacing and return the drop rate.
    fn drop_rate(spec: &LossSpec, n: usize, spacing: SimDuration, seed: u64) -> f64 {
        let mut rng = SimRng::seed(seed);
        let mut model = spec.build(&mut rng);
        let mut t = SimTime::ZERO;
        let mut drops = 0;
        for _ in 0..n {
            t += spacing;
            if model.should_drop(t, &mut rng) {
                drops += 1;
            }
        }
        drops as f64 / n as f64
    }

    #[test]
    fn none_never_drops() {
        assert_eq!(
            drop_rate(&LossSpec::None, 10_000, SimDuration::from_millis(1), 1),
            0.0
        );
    }

    #[test]
    fn bernoulli_rate_close() {
        let r = drop_rate(
            &LossSpec::bernoulli(0.04),
            100_000,
            SimDuration::from_millis(1),
            2,
        );
        assert!((r - 0.04).abs() < 0.005, "rate {r}");
    }

    #[test]
    fn bursty_mean_rate_close() {
        // Packets every 1ms, bursts of 100ms: plenty of chain mixing.
        let spec = LossSpec::bursty(0.04, SimDuration::from_millis(100));
        let r = drop_rate(&spec, 400_000, SimDuration::from_millis(1), 3);
        assert!((r - 0.04).abs() < 0.012, "rate {r}");
    }

    #[test]
    fn bursty_produces_back_to_back_drops() {
        // At 4% mean loss a Bernoulli process yields ~0.16% adjacent-drop
        // pairs; the bursty process must yield far more for packets spaced
        // well inside the burst duration.
        let spec = LossSpec::bursty(0.04, SimDuration::from_millis(100));
        let mut rng = SimRng::seed(4);
        let mut model = spec.build(&mut rng);
        let mut t = SimTime::ZERO;
        let outcomes: Vec<bool> = (0..200_000)
            .map(|_| {
                t += SimDuration::from_millis(1);
                model.should_drop(t, &mut rng)
            })
            .collect();
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let rate = pairs as f64 / outcomes.len() as f64;
        assert!(rate > 0.005, "adjacent pair rate {rate}");
    }

    #[test]
    fn bursts_decay_over_wall_clock_time() {
        // A packet offered long after a burst must see the stationary
        // distribution, not the frozen bad state: the conditional drop
        // probability for widely spaced packets approaches the mean.
        let spec = LossSpec::bursty(0.04, SimDuration::from_millis(100));
        // Spacing of 10s ⇒ effectively independent draws at the mean rate.
        let r = drop_rate(&spec, 60_000, SimDuration::from_secs(10), 5);
        assert!((r - 0.04).abs() < 0.01, "rate {r}");
        // In particular nothing like the in-burst 70%.
        assert!(r < 0.1);
    }

    #[test]
    fn script_drops_exact_indices() {
        let spec = LossSpec::Script {
            drops: vec![5, 2, 2, 9],
        };
        let mut rng = SimRng::seed(5);
        let mut model = spec.build(&mut rng);
        let positions: Vec<u64> = (0u64..12)
            .filter(|_| model.should_drop(SimTime::ZERO, &mut rng))
            .collect();
        assert_eq!(positions, vec![2, 5, 9]);
    }

    #[test]
    fn mean_loss_matches_construction() {
        let spec = LossSpec::bursty(0.03, SimDuration::from_millis(150));
        assert!((spec.mean_loss() - 0.03).abs() < 1e-9);
        assert_eq!(LossSpec::bernoulli(0.05).mean_loss(), 0.05);
        assert_eq!(LossSpec::None.mean_loss(), 0.0);
    }

    #[test]
    fn spec_clone_compares_equal() {
        let spec = LossSpec::bursty(0.03, SimDuration::from_millis(80));
        assert_eq!(spec, spec.clone());
        assert_ne!(spec, LossSpec::bernoulli(0.03));
    }
}

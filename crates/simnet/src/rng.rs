//! Seeded randomness and the distribution toolbox used by workload models.
//!
//! All stochastic behaviour in the simulator flows through [`SimRng`], a
//! self-contained xoshiro256++ generator that can only be constructed from
//! an explicit seed — the build must work without any crate registry, so no
//! external RNG crate is used. Workload models additionally need a few
//! heavy-tailed distributions (flow sizes in the paper span five orders of
//! magnitude); those are implemented here directly.

use crate::time::SimDuration;

/// Deterministic simulation RNG (xoshiro256++ with SplitMix64 seeding).
/// Construct with [`SimRng::seed`]; derive stream-independent children with
/// [`SimRng::fork`] so that adding a random draw in one component never
/// perturbs another component's stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create an RNG from a 64-bit seed. The four words of xoshiro state
    /// are successive SplitMix64 outputs, as the xoshiro authors recommend.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64_mix(sm)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The raw 64-bit draw every other method is built on.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A 32-bit draw (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Derive an independent child RNG identified by `stream`. Children with
    /// distinct stream ids are decorrelated; the parent is not advanced.
    pub fn fork(&self, stream: u64) -> Self {
        // SplitMix64 over (initial-seed-derived state ⊕ stream id). We
        // intentionally do not advance `self`: forks depend only on the
        // parent's seed identity, captured here via a stable hash of a
        // cloned-parent draw.
        let mut probe = self.clone();
        let base = probe.next_u64();
        SimRng::seed(splitmix64(
            base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Uniform draw in `[0, 1)` using the top 53 bits of one draw.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`, unbiased via 128-bit widening
    /// multiplication with rejection (Lemire). Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            // Accept unless the draw lands in the biased low fringe.
            if (m as u64) >= span.wrapping_neg() % span {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal draw (Box–Muller; uses two uniforms per call).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Lognormal draw with the given parameters of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// Exponential draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Bounded Pareto draw on `[lo, hi]` with shape `alpha` — the classic
    /// heavy-tailed flow-size model.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// A random duration drawn from a lognormal in **seconds** with the given
    /// median and a multiplicative spread `sigma` (σ of the log).
    pub fn lognormal_duration(&mut self, median: SimDuration, sigma: f64) -> SimDuration {
        let secs = self.lognormal(median.as_secs_f64().max(1e-9).ln(), sigma);
        SimDuration::from_secs_f64(secs)
    }

    /// Draw an index `0..weights.len()` proportionally to `weights`.
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

/// One SplitMix64 step: advance `x` by the golden-ratio increment and mix.
/// Public so seed-derivation schemes elsewhere (the parallel flow engine's
/// per-flow seeds) share one well-tested mixer.
pub fn splitmix64(x: u64) -> u64 {
    splitmix64_mix(x.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An empirical distribution: samples uniformly among weighted buckets, then
/// uniformly within the bucket's `[lo, hi)` value range. Used to reproduce
/// published CDFs such as the initial-receive-window distribution (Fig. 6).
#[derive(Debug, Clone)]
pub struct EmpiricalDist {
    buckets: Vec<(f64, f64, f64)>, // (weight, lo, hi)
    total: f64,
}

impl EmpiricalDist {
    /// Build from `(weight, lo, hi)` buckets. Weights need not be normalized.
    /// Panics if empty, if any weight is negative, or if all weights are zero.
    pub fn new(buckets: Vec<(f64, f64, f64)>) -> Self {
        assert!(!buckets.is_empty());
        let total: f64 = buckets.iter().map(|b| b.0).sum();
        assert!(total > 0.0 && buckets.iter().all(|b| b.0 >= 0.0 && b.2 >= b.1));
        EmpiricalDist { buckets, total }
    }

    /// Draw one value.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let mut x = rng.f64() * self.total;
        for &(w, lo, hi) in &self.buckets {
            if x < w {
                return if hi > lo {
                    lo + rng.f64() * (hi - lo)
                } else {
                    lo
                };
            }
            x -= w;
        }
        let &(_, lo, hi) = self.buckets.last().expect("non-empty");
        if hi > lo {
            lo + rng.f64() * (hi - lo)
        } else {
            lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_decorrelated_and_deterministic() {
        let parent = SimRng::seed(1);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let mut c1b = parent.fork(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn lognormal_median_close() {
        let mut rng = SimRng::seed(11);
        let n = 20_000;
        let mut v: Vec<f64> = (0..n).map(|_| rng.lognormal(100.0f64.ln(), 0.5)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[n / 2];
        assert!((median - 100.0).abs() < 5.0, "median {median}");
    }

    #[test]
    fn bounded_pareto_in_range() {
        let mut rng = SimRng::seed(5);
        for _ in 0..10_000 {
            let x = rng.bounded_pareto(1.2, 10.0, 1e6);
            assert!((10.0..=1e6).contains(&x), "{x}");
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed(13);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn empirical_dist_samples_within_buckets() {
        let d = EmpiricalDist::new(vec![(0.5, 2.0, 2.0), (0.5, 10.0, 20.0)]);
        let mut rng = SimRng::seed(17);
        for _ in 0..5_000 {
            let x = d.sample(&mut rng);
            assert!(x == 2.0 || (10.0..20.0).contains(&x), "{x}");
        }
    }
}

//! Unidirectional link model.
//!
//! A [`Link`] models one direction of a network path as: a loss process →
//! a drop-tail FIFO queue drained at the configured bandwidth → fixed
//! propagation delay plus optional jitter → optional reordering (an extra
//! delay applied to a randomly chosen packet, letting later packets overtake
//! it).
//!
//! The link itself does not own an event queue; callers offer a packet and
//! receive either a computed arrival time (to schedule on their
//! [`crate::EventQueue`]) or a drop verdict. This keeps the link reusable by
//! any driver loop, mirroring the "building blocks, not framework" approach
//! of event-driven stacks like smoltcp.

use std::collections::VecDeque;

use crate::loss::{time_hash, LossModel, LossSpec};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Static description of one link direction.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Serialization rate in bits per second; `0` means infinitely fast
    /// (no queueing delay, queue capacity ignored).
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Maximum uniform random extra delay added per packet (models delay
    /// jitter; `ZERO` disables).
    pub jitter: SimDuration,
    /// Drop-tail queue capacity in packets; `0` means unbounded.
    pub queue_pkts: usize,
    /// The loss process applied to packets that were admitted to the queue.
    pub loss: LossSpec,
    /// Probability that a packet suffers a delay spike (held back so that
    /// packets sent after it arrive first — reordering — or so that ACKs
    /// arrive RTTs late — delay-variation stalls).
    pub reorder_prob: f64,
    /// Mean of the exponentially distributed extra delay applied to spiked
    /// packets.
    pub reorder_extra: SimDuration,
    /// Rate (per second) at which path-wide *delay bursts* begin: episodes
    /// of transient queue buildup during which **every** packet suffers
    /// `delay_burst_extra` of additional latency. These are what produce
    /// the paper's packet-delay and ACK-delay stalls, where the whole
    /// feedback loop goes quiet for several RTTs. `0` disables.
    pub delay_burst_hz: f64,
    /// Mean delay-burst duration.
    pub delay_burst_len: SimDuration,
    /// Extra one-way delay while a burst is active.
    pub delay_burst_extra: SimDuration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            bandwidth_bps: 100_000_000, // 100 Mbit/s
            prop_delay: SimDuration::from_millis(50),
            jitter: SimDuration::ZERO,
            queue_pkts: 256,
            loss: LossSpec::None,
            reorder_prob: 0.0,
            reorder_extra: SimDuration::ZERO,
            delay_burst_hz: 0.0,
            delay_burst_len: SimDuration::from_millis(300),
            delay_burst_extra: SimDuration::from_millis(400),
        }
    }
}

/// Why a packet offered to a link was not delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The loss process dropped it ("wire loss").
    Loss,
    /// The drop-tail queue was full.
    QueueFull,
}

/// The verdict for one offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The packet arrives at the far end at the given time.
    Arrive(SimTime),
    /// The packet was dropped.
    Drop(DropReason),
}

/// Counters describing what happened to traffic offered to the link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets offered to the link.
    pub offered: u64,
    /// Packets dropped by the loss process.
    pub dropped_loss: u64,
    /// Packets dropped because the queue was full.
    pub dropped_queue: u64,
    /// Packets delivered to the far end.
    pub delivered: u64,
    /// Bytes delivered to the far end.
    pub bytes_delivered: u64,
}

/// One direction of a simulated network path.
#[derive(Debug)]
pub struct Link {
    cfg: LinkConfig,
    loss: LossModel,
    rng: SimRng,
    /// Departure times of packets currently in (or scheduled through) the
    /// serialization queue. Front entries at or before "now" have left.
    departures: VecDeque<SimTime>,
    /// Wall-clock delay-burst schedule: current/next burst interval.
    burst_start: SimTime,
    burst_end: SimTime,
    /// Dedicated stream generating the burst schedule.
    burst_rng: SimRng,
    /// Keys for the time-hashed jitter and spike draws.
    jitter_seed: u64,
    spike_seed: u64,
    /// Arrival time of the last in-order (non-spiked) packet: jittered
    /// deliveries never overtake earlier ones, like a FIFO queue whose
    /// depth varies.
    last_arrival: SimTime,
    stats: LinkStats,
}

impl Link {
    /// Build a link from its config and a dedicated RNG stream.
    pub fn new(cfg: LinkConfig, mut rng: SimRng) -> Self {
        let loss = cfg.loss.build(&mut rng);
        let burst_rng = rng.fork(0xb0b5);
        let jitter_seed = rng.next_u64();
        let spike_seed = rng.next_u64();
        Link {
            cfg,
            loss,
            rng,
            departures: VecDeque::new(),
            burst_start: SimTime::MAX,
            burst_end: SimTime::ZERO,
            burst_rng,
            jitter_seed,
            spike_seed,
            last_arrival: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Current queue occupancy (packets not yet fully serialized) at `now`.
    pub fn queue_len(&mut self, now: SimTime) -> usize {
        while matches!(self.departures.front(), Some(&d) if d <= now) {
            self.departures.pop_front();
        }
        // After a deep excursion (e.g. a long stall's retransmission burst),
        // give the buffer back once the queue fully drains.
        if self.departures.is_empty() && self.departures.capacity() > 1024 {
            self.departures.shrink_to_fit();
        }
        self.departures.len()
    }

    /// Offer a packet of `bytes` to the link at time `now`; returns the
    /// arrival time at the far end or a drop verdict.
    pub fn offer(&mut self, now: SimTime, bytes: u32) -> Delivery {
        self.stats.offered += 1;

        // The loss process sees every offered packet so scripted drop
        // indices are stable regardless of queue state.
        if self.loss.should_drop(now, &mut self.rng) {
            self.stats.dropped_loss += 1;
            return Delivery::Drop(DropReason::Loss);
        }

        let departure = if self.cfg.bandwidth_bps == 0 {
            now
        } else {
            // Always drain already-departed entries, even when the queue is
            // unbounded (`queue_pkts == 0`): otherwise `departures` grows by
            // one entry per packet for the lifetime of the link.
            let qlen = self.queue_len(now);
            if self.cfg.queue_pkts != 0 && qlen >= self.cfg.queue_pkts {
                self.stats.dropped_queue += 1;
                return Delivery::Drop(DropReason::QueueFull);
            }
            let tx_us = (bytes as u128 * 8 * 1_000_000 / self.cfg.bandwidth_bps as u128) as u64;
            let start = self.departures.back().copied().unwrap_or(now).max(now);
            let dep = start + SimDuration::from_micros(tx_us.max(1));
            self.departures.push_back(dep);
            dep
        };

        // All stochastic delay components are *time-hashed* (frozen fields
        // over the wall clock), so paired simulations under different TCP
        // mechanisms experience identical path conditions.
        let mut arrival = departure + self.cfg.prop_delay;
        if !self.cfg.jitter.is_zero() {
            let u = time_hash(self.jitter_seed, now, 250);
            arrival += SimDuration::from_secs_f64(u * self.cfg.jitter.as_secs_f64());
        }
        if self.in_delay_burst(now) {
            arrival += self.cfg.delay_burst_extra;
        }
        let spiked = self.cfg.reorder_prob > 0.0
            && time_hash(self.spike_seed, now, 250) < self.cfg.reorder_prob;
        if spiked {
            // An intentionally held-back packet: later packets may overtake.
            let u = time_hash(self.spike_seed ^ 0xdead_beef, now, 250).max(1e-12);
            arrival += SimDuration::from_secs_f64(-self.cfg.reorder_extra.as_secs_f64() * u.ln());
        } else {
            // FIFO: jitter and bursts vary the delay but never reorder.
            arrival = arrival.max(self.last_arrival);
            self.last_arrival = arrival;
        }

        self.stats.delivered += 1;
        self.stats.bytes_delivered += bytes as u64;
        Delivery::Arrive(arrival)
    }

    /// The delay-burst interval `[start, end)` the schedule currently
    /// points at — the burst in progress, or the next one if none is
    /// active. `None` until the schedule is first consulted (or when
    /// bursts are disabled). Read-only: querying never advances the
    /// schedule or consumes randomness, so it is safe to call from
    /// observers (e.g. a ground-truth oracle) without perturbing the
    /// simulation. Call right after [`Link::offer`] at time `now`: the
    /// packet was burst-delayed iff `start <= now`.
    pub fn current_burst(&self) -> Option<(SimTime, SimTime)> {
        if self.cfg.delay_burst_hz <= 0.0 || self.burst_start == SimTime::MAX {
            return None;
        }
        Some((self.burst_start, self.burst_end))
    }
}

impl Link {
    /// Evaluate the precomputed wall-clock delay-burst schedule at `now`.
    fn in_delay_burst(&mut self, now: SimTime) -> bool {
        if self.cfg.delay_burst_hz <= 0.0 {
            return false;
        }
        if self.burst_start == SimTime::MAX && self.burst_end == SimTime::ZERO {
            // First query: schedule the first burst.
            let gap = self.burst_rng.exponential(1.0 / self.cfg.delay_burst_hz);
            self.burst_start = SimTime::ZERO + SimDuration::from_secs_f64(gap);
            let len = self
                .burst_rng
                .exponential(self.cfg.delay_burst_len.as_secs_f64());
            self.burst_end =
                self.burst_start + SimDuration::from_secs_f64(len).max(SimDuration::from_micros(1));
        }
        while now >= self.burst_end {
            let gap = self.burst_rng.exponential(1.0 / self.cfg.delay_burst_hz);
            self.burst_start =
                self.burst_end + SimDuration::from_secs_f64(gap).max(SimDuration::from_micros(1));
            let len = self
                .burst_rng
                .exponential(self.cfg.delay_burst_len.as_secs_f64());
            self.burst_end =
                self.burst_start + SimDuration::from_secs_f64(len).max(SimDuration::from_micros(1));
        }
        now >= self.burst_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(cfg: LinkConfig) -> Link {
        Link::new(cfg, SimRng::seed(42))
    }

    #[test]
    fn infinite_bandwidth_is_pure_delay() {
        let mut l = link(LinkConfig {
            bandwidth_bps: 0,
            prop_delay: SimDuration::from_millis(30),
            ..LinkConfig::default()
        });
        let t = SimTime::from_millis(100);
        match l.offer(t, 1500) {
            Delivery::Arrive(at) => assert_eq!(at, t + SimDuration::from_millis(30)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serialization_delay_accumulates() {
        // 12 Mbit/s ⇒ a 1500B packet takes 1ms to serialize.
        let mut l = link(LinkConfig {
            bandwidth_bps: 12_000_000,
            prop_delay: SimDuration::ZERO,
            queue_pkts: 0,
            ..LinkConfig::default()
        });
        let t = SimTime::from_secs(1);
        let a1 = match l.offer(t, 1500) {
            Delivery::Arrive(at) => at,
            _ => panic!(),
        };
        let a2 = match l.offer(t, 1500) {
            Delivery::Arrive(at) => at,
            _ => panic!(),
        };
        assert_eq!(a1, t + SimDuration::from_millis(1));
        assert_eq!(a2, t + SimDuration::from_millis(2));
    }

    #[test]
    fn drop_tail_queue_fills_and_drains() {
        let mut l = link(LinkConfig {
            bandwidth_bps: 12_000_000,
            prop_delay: SimDuration::ZERO,
            queue_pkts: 2,
            ..LinkConfig::default()
        });
        let t = SimTime::from_secs(1);
        assert!(matches!(l.offer(t, 1500), Delivery::Arrive(_)));
        assert!(matches!(l.offer(t, 1500), Delivery::Arrive(_)));
        assert_eq!(l.offer(t, 1500), Delivery::Drop(DropReason::QueueFull));
        assert_eq!(l.stats().dropped_queue, 1);
        // After both packets serialize (2ms) the queue is empty again.
        let later = t + SimDuration::from_millis(3);
        assert!(matches!(l.offer(later, 1500), Delivery::Arrive(_)));
    }

    #[test]
    fn scripted_loss_drops_by_offer_index() {
        let mut l = link(LinkConfig {
            loss: LossSpec::Script { drops: vec![1] },
            bandwidth_bps: 0,
            ..LinkConfig::default()
        });
        let t = SimTime::from_secs(1);
        assert!(matches!(l.offer(t, 100), Delivery::Arrive(_)));
        assert_eq!(l.offer(t, 100), Delivery::Drop(DropReason::Loss));
        assert!(matches!(l.offer(t, 100), Delivery::Arrive(_)));
        assert_eq!(l.stats().dropped_loss, 1);
        assert_eq!(l.stats().delivered, 2);
    }

    #[test]
    fn reordering_delays_selected_packets() {
        let mut l = link(LinkConfig {
            bandwidth_bps: 0,
            prop_delay: SimDuration::from_millis(10),
            reorder_prob: 1.0,
            reorder_extra: SimDuration::from_millis(25),
            ..LinkConfig::default()
        });
        // Every packet gets an exponential extra delay beyond the base;
        // the draws are keyed by time, so offer at distinct instants.
        let mut total_extra = SimDuration::ZERO;
        for i in 0..200u64 {
            let t = SimTime::from_secs(2) + SimDuration::from_millis(i);
            match l.offer(t, 100) {
                Delivery::Arrive(at) => {
                    assert!(at > t + SimDuration::from_millis(10));
                    total_extra += at - (t + SimDuration::from_millis(10));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let mean_ms = total_extra.as_secs_f64() * 1e3 / 200.0;
        assert!((mean_ms - 25.0).abs() < 8.0, "mean extra {mean_ms}ms");
    }

    #[test]
    fn delay_bursts_apply_to_all_packets_in_the_episode() {
        let mut l = link(LinkConfig {
            bandwidth_bps: 0,
            prop_delay: SimDuration::from_millis(10),
            delay_burst_hz: 10_000.0, // effectively always bursting
            delay_burst_len: SimDuration::from_secs(100),
            delay_burst_extra: SimDuration::from_millis(500),
            ..LinkConfig::default()
        });
        // Prime the process with a non-zero elapsed interval.
        let t = SimTime::from_millis(100);
        match l.offer(t, 100) {
            Delivery::Arrive(at) => {
                assert_eq!(at, t + SimDuration::from_millis(510), "burst delay applied")
            }
            other => panic!("unexpected {other:?}"),
        }
        // The next packet inside the burst is delayed too.
        match l.offer(t + SimDuration::from_millis(1), 100) {
            Delivery::Arrive(at) => {
                assert_eq!(at, t + SimDuration::from_millis(511));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn no_bursts_when_disabled() {
        let mut l = link(LinkConfig {
            bandwidth_bps: 0,
            prop_delay: SimDuration::from_millis(10),
            delay_burst_hz: 0.0,
            ..LinkConfig::default()
        });
        for i in 0..100 {
            let t = SimTime::from_millis(100 + i * 10);
            match l.offer(t, 100) {
                Delivery::Arrive(at) => assert_eq!(at, t + SimDuration::from_millis(10)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn unbounded_queue_does_not_accumulate_departures() {
        // queue_pkts == 0 (unbounded) with finite bandwidth: the departure
        // buffer must still drain as simulated time advances.
        let mut l = link(LinkConfig {
            bandwidth_bps: 12_000_000,
            prop_delay: SimDuration::ZERO,
            queue_pkts: 0,
            ..LinkConfig::default()
        });
        for i in 0..10_000u64 {
            // One packet every 10ms; each takes 1ms to serialize, so the
            // queue is always empty when the next packet shows up.
            let t = SimTime::from_millis(10 * i);
            assert!(matches!(l.offer(t, 1500), Delivery::Arrive(_)));
            assert!(l.departures.len() <= 1, "departures must drain");
        }
        assert!(l.departures.capacity() <= 1024);
    }

    #[test]
    fn stats_count_bytes() {
        let mut l = link(LinkConfig {
            bandwidth_bps: 0,
            ..LinkConfig::default()
        });
        let t = SimTime::ZERO;
        l.offer(t, 100);
        l.offer(t, 200);
        assert_eq!(l.stats().bytes_delivered, 300);
        assert_eq!(l.stats().offered, 2);
    }
}

//! Simulated time.
//!
//! Simulation time is a monotonically increasing counter of **microseconds**
//! since the start of the run. Microsecond resolution is finer than anything
//! TCP's timers need (the Linux jiffy on the paper's 2.6.32 kernel is 1–10ms)
//! while keeping arithmetic in `u64` exact for simulations lasting millennia.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later (useful when comparing loosely-ordered samples).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest µs.
    /// Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale by a float factor (used for `2·SRTT`-style thresholds),
    /// rounding to the nearest µs and clamping negatives to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Component-wise minimum.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Component-wise maximum.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration(self.0.clamp(lo.0, hi.0))
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; saturates in release.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "SimTime subtraction underflow: {rhs} > {self}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs <= self, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(1500);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t.as_micros(), 1_500_000);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(
            SimDuration::from_secs_f64(0.0015),
            SimDuration::from_micros(1500)
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_handles_reversed_order() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(10));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.0), SimDuration::from_millis(200));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(50));
    }

    #[test]
    fn clamp_and_minmax() {
        let d = SimDuration::from_millis(150);
        let lo = SimDuration::from_millis(200);
        let hi = SimDuration::from_secs(120);
        assert_eq!(d.clamp(lo, hi), lo);
        assert_eq!(hi.min(lo), lo);
        assert_eq!(hi.max(lo), hi);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12µs");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(2500).to_string(), "2.500s");
    }
}

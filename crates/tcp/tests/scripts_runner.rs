//! Run every packetdrill-style script in `tests/scripts/` against the
//! sender. Each file documents one RFC behaviour; a failure names the file
//! and line.

use simnet::time::SimDuration;
use tcp_sim::cc::CcKind;
use tcp_sim::script::{parse, run};
use tcp_sim::sender::SenderConfig;

fn run_script_file(name: &str) {
    let path = format!("{}/tests/scripts/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let script = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let cfg = SenderConfig {
        cc: CcKind::Reno,
        ..SenderConfig::default()
    };
    run(&script, cfg, SimDuration::from_millis(10)).unwrap_or_else(|e| panic!("{name}: {e}"));
}

#[test]
fn slow_start() {
    run_script_file("slow_start.txt");
}

#[test]
fn rto_backoff() {
    run_script_file("rto_backoff.txt");
}

#[test]
fn karn_and_dupack() {
    run_script_file("karn_and_dupack.txt");
}

#[test]
fn zero_window_persist() {
    run_script_file("zero_window_persist.txt");
}

#[test]
fn partial_ack_recovery() {
    run_script_file("partial_ack_recovery.txt");
}

#[test]
fn tlp_tail_probe() {
    run_script_file("tlp_tail_probe.txt");
}

#[test]
fn srto_f_double() {
    run_script_file("srto_f_double.txt");
}

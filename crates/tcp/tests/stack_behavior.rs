//! Behavioural integration tests of the TCP stack: timer interactions,
//! receiver pathologies and recovery dynamics that span sender + receiver.

use simnet::loss::LossSpec;
use simnet::time::{SimDuration, SimTime};
use tcp_sim::receiver::{Receiver, ReceiverConfig};
use tcp_sim::recovery::{RecoveryMechanism, SrtoConfig};
use tcp_sim::seg::{SackList, SegFlags, Segment, DEFAULT_MSS};
use tcp_sim::sender::{CaState, Sender, SenderConfig};
use tcp_sim::sim::{FlowScript, FlowSim, FlowSimConfig, RequestSpec};

const MSS: u64 = DEFAULT_MSS as u64;

fn ms(x: u64) -> SimTime {
    SimTime::from_millis(x)
}

fn data_seg(seq: u64, len: u32) -> Segment {
    Segment {
        seq,
        len,
        flags: SegFlags::ACK,
        ack: 0,
        rwnd: 65535,
        sack: SackList::new(),
        dsack: false,
        probe: false,
    }
}

/// The delayed-ACK / RTO-floor race of §4.3: a 2-segment window where the
/// odd tail segment's ACK is delayed beyond the sender's RTO produces a
/// spurious timeout retransmission, which the receiver DSACKs.
#[test]
fn delack_races_the_rto_floor() {
    // Sender with a converged, floor-level RTO.
    let mut tx = Sender::new(SenderConfig {
        cc: tcp_sim::cc::CcKind::Reno,
        init_cwnd: 10,
        ..SenderConfig::default()
    });
    tx.set_peer_rwnd(1 << 20);
    // Converge SRTT to 50ms so the floored variance term dominates:
    // RTO = SRTT + max(4·RTTVAR, 200ms) = 250ms.
    let mut out = Vec::new();
    let mut clock = 0u64;
    for _ in 0..30 {
        tx.app_write(MSS);
        tx.poll(ms(clock), &mut out);
        clock += 50;
        let acked = tx.scoreboard().snd_nxt();
        tx.on_ack(ms(clock), &Segment::pure_ack(acked, 1 << 20), &mut out);
    }
    assert_eq!(tx.rtt().rto(), SimDuration::from_millis(250));

    // One final odd segment; the client delays its ACK 300ms (RFC 1122
    // allows up to 500ms). The RTO fires first: a spurious retransmission.
    tx.app_write(MSS);
    out.clear();
    tx.poll(ms(clock), &mut out);
    assert_eq!(out.len(), 1);
    let rto_at = tx.next_deadline().unwrap();
    assert!(rto_at < ms(clock + 300), "RTO must precede the delayed ACK");
    out.clear();
    tx.on_tick(rto_at, &mut out);
    assert_eq!(tx.stats().rto_count, 1);
    assert!(out
        .iter()
        .any(|op| matches!(op, tcp_sim::sender::SendOp::Data { retrans: true, .. })));
}

/// The receiver's delayed-ACK timer only fires when something is pending.
#[test]
fn delack_timer_is_one_shot() {
    let mut rx = Receiver::new(ReceiverConfig::default());
    let t = ms(0);
    rx.on_data(t, &data_seg(0, DEFAULT_MSS));
    let d = rx.next_deadline().unwrap();
    rx.on_tick(d);
    assert!(rx.wants_ack_now());
    rx.take_ack_fields();
    assert_eq!(rx.next_deadline(), None);
    // Ticking again is harmless.
    rx.on_tick(d + SimDuration::from_secs(1));
    assert!(!rx.wants_ack_now());
}

/// A receiver drowning in out-of-order data keeps its SACK blocks within
/// the wire limit (4) and never advertises beyond its buffer.
#[test]
fn receiver_sack_block_budget() {
    let mut rx = Receiver::new(ReceiverConfig {
        buf_bytes: 1 << 20,
        ..ReceiverConfig::default()
    });
    let t = ms(0);
    // Six disjoint holes.
    for i in 0..6u64 {
        rx.on_data(t, &data_seg((2 * i + 1) * MSS, DEFAULT_MSS));
        let f = rx.take_ack_fields();
        assert!(f.sack.len() <= 4, "at most 4 SACK blocks on the wire");
        assert!(f.rwnd <= 1 << 20);
    }
}

/// S-RTO with T1 = 1 never arms its probe (packets_out < 1 is impossible
/// while data is outstanding): it degenerates to native behaviour.
#[test]
fn srto_t1_one_degenerates_to_native() {
    let cfg = FlowSimConfig {
        server_tx: SenderConfig {
            recovery: RecoveryMechanism::Srto(SrtoConfig {
                t1_packets: 1,
                ..SrtoConfig::default()
            }),
            ..SenderConfig::default()
        },
        script: FlowScript::single(40 * MSS),
        s2c: simnet::link::LinkConfig {
            loss: LossSpec::Script { drops: vec![20] },
            prop_delay: SimDuration::from_millis(40),
            bandwidth_bps: 0,
            queue_pkts: 0,
            ..simnet::link::LinkConfig::default()
        },
        c2s: simnet::link::LinkConfig {
            prop_delay: SimDuration::from_millis(40),
            bandwidth_bps: 0,
            queue_pkts: 0,
            ..simnet::link::LinkConfig::default()
        },
        ..FlowSimConfig::default()
    };
    let out = FlowSim::new(cfg, 3).run();
    assert!(out.completed);
    assert_eq!(out.server_stats.srto_probes, 0, "T1=1 must never probe");
}

/// Multi-request flows keep the congestion state across requests: a
/// recovery at the end of one response leaves the next response starting
/// from the reduced window (the paper's shared-connection effect).
#[test]
fn shared_connection_carries_state_across_requests() {
    let cfg = FlowSimConfig {
        script: FlowScript {
            requests: vec![
                RequestSpec::simple(30 * MSS),
                RequestSpec {
                    think_time: SimDuration::from_millis(50),
                    ..RequestSpec::simple(30 * MSS)
                },
            ],
        },
        s2c: simnet::link::LinkConfig {
            prop_delay: SimDuration::from_millis(40),
            bandwidth_bps: 0,
            queue_pkts: 0,
            // Kill a whole stretch of the first response's tail.
            loss: LossSpec::Script {
                drops: vec![28, 29, 30, 31],
            },
            ..simnet::link::LinkConfig::default()
        },
        c2s: simnet::link::LinkConfig {
            prop_delay: SimDuration::from_millis(40),
            bandwidth_bps: 0,
            queue_pkts: 0,
            ..simnet::link::LinkConfig::default()
        },
        ..FlowSimConfig::default()
    };
    let out = FlowSim::new(cfg, 5).run();
    assert!(out.completed);
    assert_eq!(out.request_latencies.len(), 2);
    assert!(out.server_stats.retrans_segs > 0);
    assert_eq!(out.trace.goodput_bytes_out(), 60 * MSS);
}

/// cwnd never collapses below 1 and ssthresh never below 2, whatever the
/// loss pattern throws at the sender.
#[test]
fn window_floors_hold_under_carnage() {
    let cfg = FlowSimConfig {
        script: FlowScript::single(60 * MSS),
        s2c: simnet::link::LinkConfig {
            prop_delay: SimDuration::from_millis(30),
            loss: LossSpec::bernoulli(0.3),
            bandwidth_bps: 0,
            queue_pkts: 0,
            ..simnet::link::LinkConfig::default()
        },
        c2s: simnet::link::LinkConfig {
            prop_delay: SimDuration::from_millis(30),
            loss: LossSpec::bernoulli(0.1),
            bandwidth_bps: 0,
            queue_pkts: 0,
            ..simnet::link::LinkConfig::default()
        },
        max_time: SimDuration::from_secs(600),
        ..FlowSimConfig::default()
    };
    let out = FlowSim::new(cfg, 9).run();
    // 30% loss is brutal; the flow may or may not finish inside the cap,
    // but the capture must show sane, loss-recovering behaviour throughout.
    assert!(out.server_stats.rto_count > 0);
    assert!(out.trace.goodput_bytes_out() > 0);
    if out.completed {
        assert_eq!(out.trace.goodput_bytes_out(), 60 * MSS);
    }
}

/// Sender state machine: Disorder is left for Open once the holes fill
/// without a retransmission (pure reordering).
#[test]
fn reordering_passes_through_disorder_without_recovery() {
    let mut s = Sender::new(SenderConfig {
        cc: tcp_sim::cc::CcKind::Reno,
        init_cwnd: 10,
        ..SenderConfig::default()
    });
    s.set_peer_rwnd(1 << 20);
    s.app_write(4 * MSS);
    let mut out = Vec::new();
    s.poll(ms(0), &mut out);
    // One dupack (reordered segment), then the cumulative ACK.
    let mut dup = Segment::pure_ack(0, 1 << 20);
    dup.sack = [tcp_sim::seg::SackBlock::new(MSS, 2 * MSS)].into();
    s.on_ack(ms(100), &dup, &mut out);
    assert_eq!(s.ca_state(), CaState::Disorder);
    s.on_ack(ms(101), &Segment::pure_ack(4 * MSS, 1 << 20), &mut out);
    assert_eq!(s.ca_state(), CaState::Open);
    assert_eq!(s.stats().retrans_segs, 0);
    assert_eq!(s.stats().fast_recovery_count, 0);
}

//! Congestion-avoidance window growth: Reno and CUBIC.
//!
//! The window *reduction* logic (rate-halving in Recovery, collapse to 1 MSS
//! in Loss) lives in the sender's state machine, as in Linux; this module
//! only answers "how does cwnd grow on this ACK?" and "what ssthresh does a
//! congestion event set?". CUBIC is the 2.6.32 default and the paper's
//! deployment; Reno is kept for tests and ablations.

use simnet::time::SimTime;

#[cfg(test)]
use simnet::time::SimDuration;

/// Which congestion-avoidance algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    /// Classic NewReno AIMD.
    Reno,
    /// CUBIC (Linux default since 2.6.19), β = 717/1024 ≈ 0.7, C = 0.4.
    Cubic,
}

/// Congestion-avoidance state (one per connection).
#[derive(Debug, Clone)]
pub enum Cc {
    /// Reno state.
    Reno {
        /// ACK-count accumulator for the +1/cwnd growth.
        acked_cnt: u32,
    },
    /// CUBIC state.
    Cubic {
        /// Window size just before the last reduction (W_max), in packets.
        last_max_cwnd: f64,
        /// Start of the current growth epoch.
        epoch_start: Option<SimTime>,
        /// Origin point K (seconds into the epoch where W_max is regained).
        k: f64,
        /// cwnd at the start of the epoch.
        origin_cwnd: f64,
        /// ACK-count accumulator for sub-packet growth.
        acked_cnt: u32,
        /// Current per-ACK growth target (packets per cwnd of ACKs).
        cnt: u32,
    },
}

const CUBIC_BETA: f64 = 717.0 / 1024.0;
const CUBIC_C: f64 = 0.4;

impl Cc {
    /// Fresh state for the chosen algorithm.
    pub fn new(kind: CcKind) -> Self {
        match kind {
            CcKind::Reno => Cc::Reno { acked_cnt: 0 },
            CcKind::Cubic => Cc::Cubic {
                last_max_cwnd: 0.0,
                epoch_start: None,
                k: 0.0,
                origin_cwnd: 0.0,
                acked_cnt: 0,
                cnt: 1,
            },
        }
    }

    /// The ssthresh a congestion event should set, given the current cwnd
    /// in packets: `cwnd/2` for Reno, `0.7·cwnd` for CUBIC (min 2).
    pub fn ssthresh(&self, cwnd: u32) -> u32 {
        match self {
            Cc::Reno { .. } => (cwnd / 2).max(2),
            Cc::Cubic { .. } => ((cwnd as f64 * CUBIC_BETA) as u32).max(2),
        }
    }

    /// Record a congestion event (entering Recovery or Loss): remembers
    /// W_max and ends the growth epoch.
    pub fn on_congestion_event(&mut self, cwnd: u32) {
        if let Cc::Cubic {
            last_max_cwnd,
            epoch_start,
            ..
        } = self
        {
            // Fast convergence: if we lost before regaining the previous
            // W_max, release bandwidth by remembering a reduced W_max.
            *last_max_cwnd = if (cwnd as f64) < *last_max_cwnd {
                cwnd as f64 * (1.0 + CUBIC_BETA) / 2.0
            } else {
                cwnd as f64
            };
            *epoch_start = None;
        }
    }

    /// Grow `cwnd` (packets) in congestion avoidance for `acked` newly
    /// acknowledged packets at time `now`; returns the new cwnd.
    /// Slow-start growth (cwnd < ssthresh) is handled by the caller.
    pub fn cong_avoid(&mut self, now: SimTime, cwnd: u32, acked: u32, cwnd_clamp: u32) -> u32 {
        match self {
            Cc::Reno { acked_cnt } => {
                // cwnd += 1 for every cwnd ACKed packets.
                *acked_cnt += acked;
                let mut w = cwnd;
                while *acked_cnt >= w {
                    *acked_cnt -= w;
                    w = (w + 1).min(cwnd_clamp);
                }
                w
            }
            Cc::Cubic {
                last_max_cwnd,
                epoch_start,
                k,
                origin_cwnd,
                acked_cnt,
                cnt,
            } => {
                // (Re)start the epoch on the first ACK after a reduction.
                let t0 = match *epoch_start {
                    Some(t) => t,
                    None => {
                        *epoch_start = Some(now);
                        *origin_cwnd = cwnd as f64;
                        *k = if *last_max_cwnd > cwnd as f64 {
                            ((*last_max_cwnd - cwnd as f64) / CUBIC_C).cbrt()
                        } else {
                            0.0
                        };
                        now
                    }
                };
                let t = (now - t0).as_secs_f64();
                let w_max = if *last_max_cwnd > 0.0 {
                    *last_max_cwnd
                } else {
                    cwnd as f64
                };
                let target = w_max + CUBIC_C * (t - *k).powi(3);
                // Translate the cubic target into a per-ACK increment count,
                // as the kernel does: grow by (target - cwnd) per RTT.
                *cnt = if target > cwnd as f64 {
                    (cwnd as f64 / (target - cwnd as f64)).max(2.0) as u32
                } else {
                    100 * cwnd // effectively hold
                };
                *acked_cnt += acked;
                let mut w = cwnd;
                while *acked_cnt >= (*cnt).max(1) {
                    *acked_cnt -= (*cnt).max(1);
                    w = (w + 1).min(cwnd_clamp);
                }
                w
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_ssthresh_halves() {
        let cc = Cc::new(CcKind::Reno);
        assert_eq!(cc.ssthresh(20), 10);
        assert_eq!(cc.ssthresh(3), 2);
        assert_eq!(cc.ssthresh(1), 2);
    }

    #[test]
    fn cubic_ssthresh_is_beta() {
        let cc = Cc::new(CcKind::Cubic);
        assert_eq!(cc.ssthresh(100), 70);
        assert_eq!(cc.ssthresh(2), 2);
    }

    #[test]
    fn reno_grows_one_per_window() {
        let mut cc = Cc::new(CcKind::Reno);
        let now = SimTime::ZERO;
        let mut cwnd = 10;
        // 10 acked packets at cwnd 10 ⇒ exactly +1.
        cwnd = cc.cong_avoid(now, cwnd, 10, 1000);
        assert_eq!(cwnd, 11);
        // 5 more: not enough for another increment.
        cwnd = cc.cong_avoid(now, cwnd, 5, 1000);
        assert_eq!(cwnd, 11);
    }

    #[test]
    fn reno_respects_clamp() {
        let mut cc = Cc::new(CcKind::Reno);
        let cwnd = cc.cong_avoid(SimTime::ZERO, 10, 100, 12);
        assert!(cwnd <= 12);
    }

    #[test]
    fn cubic_recovers_toward_wmax_then_probes() {
        let mut cc = Cc::new(CcKind::Cubic);
        cc.on_congestion_event(100); // W_max = 100
        let mut cwnd = 70; // post-β reduction
        let mut now = SimTime::ZERO;
        let rtt = SimDuration::from_millis(100);
        for _ in 0..600 {
            now += rtt;
            cwnd = cc.cong_avoid(now, cwnd, cwnd, 10_000);
        }
        // After a minute of ACK clocking, cubic must have passed W_max and
        // be probing beyond it.
        assert!(cwnd > 100, "cwnd {cwnd}");
    }

    #[test]
    fn cubic_fast_convergence_reduces_wmax() {
        let mut cc = Cc::new(CcKind::Cubic);
        cc.on_congestion_event(100);
        // A second loss below the previous W_max shrinks the remembered max.
        cc.on_congestion_event(50);
        if let Cc::Cubic { last_max_cwnd, .. } = cc {
            assert!(
                last_max_cwnd < 50.0 * 1.71 && last_max_cwnd > 40.0,
                "{last_max_cwnd}"
            );
        } else {
            unreachable!()
        }
    }

    #[test]
    fn cubic_plateau_holds_near_wmax() {
        let mut cc = Cc::new(CcKind::Cubic);
        cc.on_congestion_event(100);
        let mut cwnd = 70u32;
        let mut now = SimTime::ZERO;
        let rtt = SimDuration::from_millis(50);
        let mut near_max_rounds = 0;
        for _ in 0..400 {
            now += rtt;
            let prev = cwnd;
            cwnd = cc.cong_avoid(now, cwnd, cwnd, 10_000);
            if (95..=105).contains(&cwnd) && cwnd - prev <= 1 {
                near_max_rounds += 1;
            }
        }
        // The concave/convex plateau around W_max should persist for a while.
        assert!(near_max_rounds > 5, "plateau rounds {near_max_rounds}");
    }
}

//! The TCP receiver: reassembly, SACK/DSACK generation, delayed ACKs and a
//! finite receive buffer.
//!
//! Client behaviours the paper traces back to receivers are modelled here:
//!
//! * **Small initial receive windows** — old client software advertising as
//!   little as 2 MSS (4096 bytes) in the SYN (Fig. 6); modelled as a small
//!   fixed receive buffer, so the advertised window is `buffer − buffered`.
//! * **Zero-window stalls** — an application that drains the buffer slower
//!   than the sender fills it (Table 4).
//! * **Delayed ACKs** — one ACK per two full segments, or after the delack
//!   timer (RFC 1122 allows up to 500ms); with a 2-MSS window the
//!   interaction with the sender's 200ms RTO floor produces the paper's
//!   *ACK delay/loss* timeout stalls (§4.3).
//! * **DSACK** (RFC 2883) — duplicate segments are reported so the
//!   sender (and TAPO offline) can recognize spurious retransmissions.

use simnet::time::{SimDuration, SimTime};

use crate::seg::{SackBlock, SackList, Segment, SACK_CAP};

/// Receiver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceiverConfig {
    /// Maximum segment size (for delack full-segment counting).
    pub mss: u32,
    /// Receive buffer capacity in bytes; also the initial advertised window.
    pub buf_bytes: u64,
    /// Delayed-ACK timer (Linux: 40ms–200ms; RFC 1122 caps at 500ms).
    pub delack_timeout: SimDuration,
    /// ACK every n-th full-sized segment (2 per RFC 1122).
    pub delack_segs: u32,
    /// Disable delayed ACKs entirely (ack every segment immediately).
    pub quickack: bool,
}

impl Default for ReceiverConfig {
    fn default() -> Self {
        ReceiverConfig {
            mss: crate::seg::DEFAULT_MSS,
            buf_bytes: 256 * 1024,
            delack_timeout: SimDuration::from_millis(40),
            delack_segs: 2,
            quickack: false,
        }
    }
}

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// In-order payload bytes delivered toward the application.
    pub bytes_delivered: u64,
    /// Data segments received (in or out of order).
    pub data_segs: u64,
    /// Fully or partially duplicate segments (spurious retransmissions seen).
    pub dup_segs: u64,
    /// Segments (or parts) discarded because the buffer was full.
    pub dropped_for_window: u64,
    /// Pure ACKs emitted.
    pub acks_sent: u64,
}

/// The receiver for one direction of a connection.
#[derive(Debug, Clone)]
pub struct Receiver {
    cfg: ReceiverConfig,
    rcv_nxt: u64,
    /// Out-of-order intervals `[start, end)`, disjoint, sorted. The `u64`
    /// recency stamp orders SACK blocks most-recent-first.
    ooo: Vec<(u64, u64, u64)>,
    recency: u64,
    /// In-order bytes delivered but not yet read by the application.
    buffered: u64,
    pending_dsack: Option<SackBlock>,
    ack_now: bool,
    delack_deadline: Option<SimTime>,
    delack_pending_segs: u32,
    fin_seen: bool,
    stats: ReceiverStats,
}

impl Receiver {
    /// A fresh receiver.
    pub fn new(cfg: ReceiverConfig) -> Self {
        Receiver {
            cfg,
            rcv_nxt: 0,
            ooo: Vec::new(),
            recency: 0,
            buffered: 0,
            pending_dsack: None,
            ack_now: false,
            delack_deadline: None,
            delack_pending_segs: 0,
            fin_seen: false,
            stats: ReceiverStats::default(),
        }
    }

    // ------------------------------------------------------- accessors

    /// Next expected in-order stream offset (the cumulative ACK we send).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Raw free buffer space.
    fn free_space(&self) -> u64 {
        let ooo_bytes: u64 = self.ooo.iter().map(|(s, e, _)| e - s).sum();
        self.cfg.buf_bytes.saturating_sub(self.buffered + ooo_bytes)
    }

    /// Current advertised window: free buffer space with receiver-side
    /// silly-window avoidance (RFC 1122 §4.2.3.3) — a window smaller than
    /// one MSS is advertised as **zero**, which is how the paper's
    /// zero-receive-window stalls appear on the wire.
    pub fn rwnd(&self) -> u64 {
        let free = self.free_space();
        if free < self.cfg.mss as u64 {
            0
        } else {
            free
        }
    }

    /// Whether the peer's FIN has been received in order.
    pub fn fin_received(&self) -> bool {
        self.fin_seen && self.ooo.is_empty()
    }

    /// In-order bytes awaiting application read.
    pub fn buffered(&self) -> u64 {
        self.buffered
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &ReceiverConfig {
        &self.cfg
    }

    // ----------------------------------------------------- data handling

    /// Process the data portion of an incoming segment. Returns `true` if
    /// an ACK should be sent immediately (the caller then calls
    /// [`Receiver::take_ack_fields`]); otherwise the delayed-ACK timer is
    /// running.
    pub fn on_data(&mut self, now: SimTime, seg: &Segment) -> bool {
        if seg.flags.fin {
            self.fin_seen = true;
            self.ack_now = true;
        }
        if !seg.has_data() {
            return self.ack_now;
        }
        self.stats.data_segs += 1;

        let mut start = seg.seq;
        let end = seg.seq_end();

        // Fully duplicate segment: DSACK it, ACK immediately (RFC 2883/5961).
        if end <= self.rcv_nxt {
            self.stats.dup_segs += 1;
            self.pending_dsack = Some(SackBlock::new(seg.seq, end));
            self.ack_now = true;
            return true;
        }
        // Partial overlap below rcv_nxt: note the duplicate part.
        if start < self.rcv_nxt {
            self.stats.dup_segs += 1;
            self.pending_dsack = Some(SackBlock::new(start, self.rcv_nxt));
            start = self.rcv_nxt;
        }
        // Duplicate of an out-of-order interval already held?
        if self.ooo.iter().any(|&(s, e, _)| start >= s && end <= e) {
            self.stats.dup_segs += 1;
            self.pending_dsack = Some(SackBlock::new(start, end));
            self.ack_now = true;
            return true;
        }

        // Window check: a segment that does not fit entirely in the free
        // buffer space is dropped whole (receivers under memory pressure do
        // not deliver partial segments), keeping ACKs on segment boundaries.
        let window_edge = self.rcv_nxt + self.free_space();
        if end > window_edge {
            self.stats.dropped_for_window += 1;
            self.ack_now = true;
            return true;
        }

        if start == self.rcv_nxt {
            // In-order delivery; may bridge into out-of-order data.
            self.rcv_nxt = end;
            self.buffered += end - start;
            let had_holes = !self.ooo.is_empty();
            self.absorb_ooo();
            if had_holes {
                // Filling a hole: ACK immediately (RFC 5681).
                self.ack_now = true;
            } else if self.cfg.quickack {
                self.ack_now = true;
            } else {
                self.delack_pending_segs += 1;
                if self.delack_pending_segs >= self.cfg.delack_segs {
                    self.ack_now = true;
                } else if self.delack_deadline.is_none() {
                    self.delack_deadline = Some(now + self.cfg.delack_timeout);
                }
            }
        } else {
            // Out of order: store and ACK immediately with SACK info.
            self.recency += 1;
            self.insert_ooo(start, end, self.recency);
            self.ack_now = true;
        }
        self.ack_now
    }

    fn insert_ooo(&mut self, start: u64, end: u64, stamp: u64) {
        let mut start = start;
        let mut end = end;
        // Merge with any overlapping/adjacent intervals.
        self.ooo.retain(|&(s, e, _)| {
            if e < start || s > end {
                true
            } else {
                start = start.min(s);
                end = end.max(e);
                false
            }
        });
        self.ooo.push((start, end, stamp));
        self.ooo.sort_by_key(|&(s, _, _)| s);
    }

    fn absorb_ooo(&mut self) {
        while let Some(pos) = self.ooo.iter().position(|&(s, _, _)| s <= self.rcv_nxt) {
            let (s, e, _) = self.ooo.remove(pos);
            if e > self.rcv_nxt {
                self.buffered += e - self.rcv_nxt;
                self.rcv_nxt = e;
            }
            let _ = s;
        }
    }

    // ------------------------------------------------------ ACK emission

    /// True if an immediate ACK is pending.
    pub fn wants_ack_now(&self) -> bool {
        self.ack_now
    }

    /// The delayed-ACK deadline, if armed.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.delack_deadline
    }

    /// Fire the delayed-ACK timer if expired.
    pub fn on_tick(&mut self, now: SimTime) {
        if let Some(d) = self.delack_deadline {
            if now >= d {
                self.delack_deadline = None;
                if self.delack_pending_segs > 0 {
                    self.ack_now = true;
                }
            }
        }
    }

    /// Produce the ACK fields for an outgoing segment (pure ACK or
    /// piggybacked on data), clearing all pending-ACK state.
    pub fn take_ack_fields(&mut self) -> AckFields {
        self.ack_now = false;
        self.delack_deadline = None;
        self.delack_pending_segs = 0;
        let dsack = self.pending_dsack.take();
        let mut sack = SackList::new();
        if let Some(d) = dsack {
            sack.push(d);
        }
        // SACK blocks: most recently changed interval first, then others,
        // up to SACK_CAP total including the DSACK. The ooo list is tiny
        // (a handful of holes), so selecting the top blocks by recency
        // stamp in place beats materializing and sorting a scratch Vec.
        let want = (SACK_CAP - sack.len()).min(self.ooo.len());
        let mut picked = [usize::MAX; SACK_CAP];
        for k in 0..want {
            let mut best: Option<usize> = None;
            for (i, &(_, _, stamp)) in self.ooo.iter().enumerate() {
                if picked[..k].contains(&i) {
                    continue;
                }
                if best.is_none_or(|b| stamp > self.ooo[b].2) {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            picked[k] = i;
            let (s, e, _) = self.ooo[i];
            sack.push(SackBlock::new(s, e));
        }
        self.stats.acks_sent += 1;
        AckFields {
            ack: self.rcv_nxt,
            rwnd: self.rwnd(),
            dsack: dsack.is_some(),
            sack,
        }
    }

    // -------------------------------------------------- application side

    /// The application reads up to `bytes` from the in-order buffer.
    /// Returns `true` if the window opened enough that a window-update ACK
    /// should be sent (the advertised window was below 1 MSS and at least
    /// one MSS is now free).
    pub fn app_read(&mut self, bytes: u64) -> bool {
        let before = self.rwnd();
        let take = bytes.min(self.buffered);
        self.buffered -= take;
        self.stats.bytes_delivered += take;
        let after = self.rwnd();
        let opened = before < self.cfg.mss as u64 && after >= self.cfg.mss as u64;
        if opened {
            self.ack_now = true;
        }
        opened
    }
}

/// The acknowledgment-side fields of an outgoing segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AckFields {
    /// Cumulative acknowledgment.
    pub ack: u64,
    /// Advertised window in bytes.
    pub rwnd: u64,
    /// SACK blocks (first is DSACK when `dsack`), stored inline.
    pub sack: SackList,
    /// Whether `sack[0]` is a DSACK.
    pub dsack: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::SegFlags;

    fn data_seg(seq: u64, len: u32) -> Segment {
        Segment {
            seq,
            len,
            flags: SegFlags::ACK,
            ack: 0,
            rwnd: 65535,
            sack: SackList::new(),
            dsack: false,
            probe: false,
        }
    }

    fn rx() -> Receiver {
        Receiver::new(ReceiverConfig::default())
    }

    const MSS: u32 = crate::seg::DEFAULT_MSS;

    #[test]
    fn in_order_data_uses_delayed_ack() {
        let mut r = rx();
        let t = SimTime::from_millis(0);
        assert!(
            !r.on_data(t, &data_seg(0, MSS)),
            "first segment: delack armed"
        );
        assert_eq!(r.next_deadline(), Some(t + SimDuration::from_millis(40)));
        // Second full segment forces an immediate ACK.
        assert!(r.on_data(t, &data_seg(MSS as u64, MSS)));
        let f = r.take_ack_fields();
        assert_eq!(f.ack, 2 * MSS as u64);
        assert!(f.sack.is_empty());
    }

    #[test]
    fn delack_timer_fires() {
        let mut r = rx();
        let t = SimTime::from_millis(0);
        r.on_data(t, &data_seg(0, MSS));
        let d = r.next_deadline().unwrap();
        r.on_tick(d);
        assert!(r.wants_ack_now());
        assert_eq!(r.take_ack_fields().ack, MSS as u64);
    }

    #[test]
    fn out_of_order_generates_immediate_sack() {
        let mut r = rx();
        let t = SimTime::ZERO;
        // Segment 1 lost; 2 and 3 arrive.
        assert!(r.on_data(t, &data_seg(MSS as u64, MSS)));
        let f = r.take_ack_fields();
        assert_eq!(f.ack, 0);
        assert_eq!(f.sack, vec![SackBlock::new(MSS as u64, 2 * MSS as u64)]);
        assert!(r.on_data(t, &data_seg(2 * MSS as u64, MSS)));
        let f = r.take_ack_fields();
        assert_eq!(f.sack, vec![SackBlock::new(MSS as u64, 3 * MSS as u64)]);
    }

    #[test]
    fn hole_fill_delivers_and_acks_immediately() {
        let mut r = rx();
        let t = SimTime::ZERO;
        r.on_data(t, &data_seg(MSS as u64, MSS));
        r.take_ack_fields();
        assert!(r.on_data(t, &data_seg(0, MSS)), "filling the hole acks now");
        let f = r.take_ack_fields();
        assert_eq!(f.ack, 2 * MSS as u64);
        assert!(f.sack.is_empty());
        assert_eq!(r.buffered(), 2 * MSS as u64);
    }

    #[test]
    fn duplicate_segment_triggers_dsack() {
        let mut r = rx();
        let t = SimTime::ZERO;
        r.on_data(t, &data_seg(0, MSS));
        r.on_data(t, &data_seg(MSS as u64, MSS));
        r.take_ack_fields();
        // Segment 0 arrives again (spurious retransmission).
        assert!(r.on_data(t, &data_seg(0, MSS)));
        let f = r.take_ack_fields();
        assert!(f.dsack);
        assert_eq!(f.sack[0], SackBlock::new(0, MSS as u64));
        assert_eq!(r.stats().dup_segs, 1);
    }

    #[test]
    fn duplicate_of_ooo_interval_is_dsacked() {
        let mut r = rx();
        let t = SimTime::ZERO;
        r.on_data(t, &data_seg(MSS as u64, MSS));
        r.take_ack_fields();
        assert!(r.on_data(t, &data_seg(MSS as u64, MSS)));
        let f = r.take_ack_fields();
        assert!(f.dsack);
        assert_eq!(f.sack[0], SackBlock::new(MSS as u64, 2 * MSS as u64));
        // The real SACK block follows the DSACK.
        assert!(f.sack.contains(&SackBlock::new(MSS as u64, 2 * MSS as u64)));
    }

    #[test]
    fn multiple_holes_report_most_recent_block_first() {
        let mut r = rx();
        let t = SimTime::ZERO;
        r.on_data(t, &data_seg(MSS as u64, MSS)); // hole at 0
        r.take_ack_fields();
        r.on_data(t, &data_seg(3 * MSS as u64, MSS)); // hole at 2
        let f = r.take_ack_fields();
        assert_eq!(f.sack.len(), 2);
        assert_eq!(f.sack[0], SackBlock::new(3 * MSS as u64, 4 * MSS as u64));
        assert_eq!(f.sack[1], SackBlock::new(MSS as u64, 2 * MSS as u64));
    }

    #[test]
    fn window_shrinks_with_unread_data_and_zero_windows() {
        let mut r = Receiver::new(ReceiverConfig {
            buf_bytes: 4 * MSS as u64,
            ..ReceiverConfig::default()
        });
        let t = SimTime::ZERO;
        for i in 0..4 {
            r.on_data(t, &data_seg(i * MSS as u64, MSS));
        }
        assert_eq!(r.rwnd(), 0, "buffer full, zero window");
        // A 5th segment must be discarded.
        r.on_data(t, &data_seg(4 * MSS as u64, MSS));
        assert_eq!(r.rcv_nxt(), 4 * MSS as u64);
        assert_eq!(r.stats().dropped_for_window, 1);
        // Application reads: window update requested.
        assert!(r.app_read(2 * MSS as u64));
        assert_eq!(r.rwnd(), 2 * MSS as u64);
        assert!(r.wants_ack_now());
    }

    #[test]
    fn app_read_below_mss_does_not_update_window() {
        let mut r = Receiver::new(ReceiverConfig {
            buf_bytes: 2 * MSS as u64,
            ..ReceiverConfig::default()
        });
        let t = SimTime::ZERO;
        r.on_data(t, &data_seg(0, MSS));
        r.on_data(t, &data_seg(MSS as u64, MSS));
        r.take_ack_fields();
        // Reading less than an MSS keeps the window effectively shut
        // (silly-window avoidance).
        assert!(!r.app_read(100));
    }

    #[test]
    fn fin_sets_flag_and_acks_immediately() {
        let mut r = rx();
        let t = SimTime::ZERO;
        let mut seg = data_seg(0, MSS);
        seg.flags.fin = true;
        assert!(r.on_data(t, &seg));
        assert!(r.fin_received());
    }

    #[test]
    fn fin_with_outstanding_holes_is_not_complete() {
        let mut r = rx();
        let t = SimTime::ZERO;
        let mut seg = data_seg(MSS as u64, MSS);
        seg.flags.fin = true;
        r.on_data(t, &seg);
        assert!(!r.fin_received(), "hole before FIN");
        r.on_data(t, &data_seg(0, MSS));
        assert!(r.fin_received());
    }

    #[test]
    fn quickack_acks_every_segment() {
        let mut r = Receiver::new(ReceiverConfig {
            quickack: true,
            ..ReceiverConfig::default()
        });
        assert!(r.on_data(SimTime::ZERO, &data_seg(0, MSS)));
    }

    #[test]
    fn overlap_below_rcv_nxt_delivers_tail_and_dsacks_head() {
        let mut r = rx();
        let t = SimTime::ZERO;
        r.on_data(t, &data_seg(0, MSS));
        r.take_ack_fields();
        // Retransmission covering old + new bytes.
        r.on_data(t, &data_seg(0, 2 * MSS));
        let f = r.take_ack_fields();
        assert_eq!(f.ack, 2 * MSS as u64);
        assert!(f.dsack);
        assert_eq!(f.sack[0], SackBlock::new(0, MSS as u64));
    }
}

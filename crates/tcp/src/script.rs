//! A packetdrill-style scripting DSL for the sender.
//!
//! The paper cites packetdrill (Cardwell et al., USENIX ATC'13) as the way
//! to test TCP stack behaviour against exact packet sequences. This module
//! provides a miniature equivalent for [`crate::sender::Sender`]: a script
//! injects acknowledgments at precise times and asserts exactly what the
//! sender transmits and when, making kernel-style regression tests readable:
//!
//! ```text
//! // Fast retransmit after three dupacks.
//! 0.000 write 14480
//! 0.000 > seq 0:1448
//! 0.000 > seq 1448:2896
//! 0.000 > seq 2896:4344
//! 0.100 < ack 0 sack 1448:2896
//! 0.110 < ack 0 sack 1448:4344
//! 0.120 < ack 0 sack 1448:5792
//! 0.120 > seq 0:1448 retrans
//! ```
//!
//! Line grammar (one event per line, `//` or `#` comments):
//!
//! ```text
//! option initcwnd <n> | cc reno|cubic | mechanism native|tlp|srto
//! <time> write <bytes>                 app supplies bytes
//! <time> close                         app closes the stream
//! <time> rwnd <bytes>                  set the peer's advertised window
//! <time> < ack <n> [win <n>] [sack a:b c:d ...] [dsack]
//! <time> > seq <a>:<b> [retrans] [fin] inject/expect, in order
//! <time> > probe                       expect a zero-window probe
//! <time> > nothing                     assert nothing was transmitted
//! ```
//!
//! `<time>` is absolute seconds (`0.120`) or relative to the previous event
//! (`+0.020`). Expected transmissions must match in order, with a
//! configurable time tolerance (default 10ms, covering the kernel timer
//! granularity). Unconsumed transmissions at the end of the script are an
//! error, exactly as in packetdrill.

use simnet::time::{SimDuration, SimTime};

use crate::cc::CcKind;
use crate::recovery::RecoveryMechanism;
use crate::seg::{SackBlock, Segment};
use crate::sender::{SendOp, Sender, SenderConfig};

/// A script parse or execution failure, with the 1-based script line.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptError {
    /// 1-based line in the script source (0 for end-of-script errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "script: {}", self.message)
        } else {
            write!(f, "script line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScriptError {}

fn err(line: usize, message: impl Into<String>) -> ScriptError {
    ScriptError {
        line,
        message: message.into(),
    }
}

/// What an expected transmission must look like; `None` fields match
/// anything.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExpectSeg {
    /// Exact payload range `[start, end)`.
    pub seq: Option<(u64, u64)>,
    /// Whether it must (not) be a retransmission.
    pub retrans: Option<bool>,
    /// Whether it must (not) carry FIN.
    pub fin: Option<bool>,
}

/// One scripted event.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// The application writes `bytes`.
    Write(u64),
    /// The application closes the stream.
    Close,
    /// Set the peer's advertised receive window.
    Rwnd(u64),
    /// An incoming segment (acknowledgment fields only).
    Inject(Segment),
    /// Expect the next transmission to match.
    Expect(ExpectSeg),
    /// Expect the next transmission to be a zero-window probe.
    ExpectProbe,
    /// Expect no transmission to have happened by this time.
    ExpectNothing,
}

/// Sender overrides declared by `option` lines at the top of a script.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScriptOptions {
    /// Override the initial congestion window.
    pub init_cwnd: Option<u32>,
    /// Override the congestion-avoidance algorithm.
    pub cc: Option<CcKind>,
    /// Override the recovery mechanism.
    pub mechanism: Option<RecoveryMechanism>,
}

impl ScriptOptions {
    /// Apply the overrides to a base configuration.
    pub fn apply(&self, mut cfg: SenderConfig) -> SenderConfig {
        if let Some(w) = self.init_cwnd {
            cfg.init_cwnd = w;
        }
        if let Some(cc) = self.cc {
            cfg.cc = cc;
        }
        if let Some(m) = self.mechanism {
            cfg.recovery = m;
        }
        cfg
    }
}

/// A parsed script: time-ordered events plus sender overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    events: Vec<(SimTime, usize, Action)>,
    /// `option` directives from the script header.
    pub options: ScriptOptions,
}

/// Parse a script source.
pub fn parse(src: &str) -> Result<Script, ScriptError> {
    let mut events = Vec::new();
    let mut options = ScriptOptions::default();
    let mut prev_time = SimTime::ZERO;
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split("//").next().unwrap_or("");
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let time_tok = tokens.next().expect("non-empty line");
        if time_tok == "option" {
            parse_option(lineno, &mut options, &mut tokens)?;
            if tokens.next().is_some() {
                return Err(err(lineno, "trailing tokens"));
            }
            continue;
        }
        let time = parse_time(time_tok, prev_time)
            .ok_or_else(|| err(lineno, format!("bad time {time_tok:?}")))?;
        if time < prev_time {
            return Err(err(lineno, "time moves backwards"));
        }
        prev_time = time;
        let action = parse_action(lineno, &mut tokens)?;
        if tokens.next().is_some() {
            return Err(err(lineno, "trailing tokens"));
        }
        events.push((time, lineno, action));
    }
    Ok(Script { events, options })
}

fn parse_option<'a>(
    lineno: usize,
    options: &mut ScriptOptions,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<(), ScriptError> {
    match tokens.next() {
        Some("initcwnd") => {
            options.init_cwnd = Some(
                tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "initcwnd needs a packet count"))?,
            );
        }
        Some("cc") => {
            options.cc = Some(match tokens.next() {
                Some("reno") => CcKind::Reno,
                Some("cubic") => CcKind::Cubic,
                other => return Err(err(lineno, format!("unknown cc {other:?}"))),
            });
        }
        Some("mechanism") => {
            options.mechanism = Some(match tokens.next() {
                Some("native") => RecoveryMechanism::Native,
                Some("tlp") => RecoveryMechanism::tlp(),
                Some("srto") => RecoveryMechanism::srto(),
                other => return Err(err(lineno, format!("unknown mechanism {other:?}"))),
            });
        }
        other => return Err(err(lineno, format!("unknown option {other:?}"))),
    }
    Ok(())
}

fn parse_time(tok: &str, prev: SimTime) -> Option<SimTime> {
    if let Some(rel) = tok.strip_prefix('+') {
        let secs: f64 = rel.parse().ok()?;
        Some(prev + SimDuration::from_secs_f64(secs))
    } else {
        let secs: f64 = tok.parse().ok()?;
        if secs < 0.0 {
            return None;
        }
        Some(SimTime::ZERO + SimDuration::from_secs_f64(secs))
    }
}

fn parse_action<'a>(
    lineno: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<Action, ScriptError> {
    match tokens.next() {
        Some("write") => {
            let bytes: u64 = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(lineno, "write needs a byte count"))?;
            Ok(Action::Write(bytes))
        }
        Some("close") => Ok(Action::Close),
        Some("rwnd") => {
            let bytes: u64 = tokens
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(lineno, "rwnd needs a byte count"))?;
            Ok(Action::Rwnd(bytes))
        }
        Some("<") => parse_inject(lineno, tokens),
        Some(">") => parse_expect(lineno, tokens),
        Some(other) => Err(err(lineno, format!("unknown action {other:?}"))),
        None => Err(err(lineno, "missing action")),
    }
}

fn parse_range(lineno: usize, tok: &str) -> Result<(u64, u64), ScriptError> {
    let (a, b) = tok
        .split_once(':')
        .ok_or_else(|| err(lineno, format!("expected a:b range, got {tok:?}")))?;
    let a: u64 = a
        .parse()
        .map_err(|_| err(lineno, format!("bad range start {a:?}")))?;
    let b: u64 = b
        .parse()
        .map_err(|_| err(lineno, format!("bad range end {b:?}")))?;
    if b < a {
        return Err(err(lineno, "range end before start"));
    }
    Ok((a, b))
}

fn parse_inject<'a>(
    lineno: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<Action, ScriptError> {
    let seg = Segment::pure_ack(0, u64::MAX);
    match tokens.next() {
        Some("ack") => parse_inject_rest(lineno, seg, tokens),
        Some(other) => Err(err(
            lineno,
            format!("inject must start with ack, got {other:?}"),
        )),
        None => Err(err(lineno, "inject needs an ack field")),
    }
}

fn parse_inject_rest<'a>(
    lineno: usize,
    mut seg: Segment,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<Action, ScriptError> {
    let ack: u64 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err(lineno, "ack needs a number"))?;
    seg.ack = ack;
    let mut pending: Vec<&str> = tokens.collect();
    pending.reverse();
    while let Some(tok) = pending.pop() {
        match tok {
            "win" => {
                let w: u64 = pending
                    .pop()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, "win needs a number"))?;
                seg.rwnd = w;
            }
            "sack" => {
                let mut any = false;
                while let Some(next) = pending.last() {
                    if next.contains(':') {
                        let (a, b) = parse_range(lineno, pending.pop().expect("peeked"))?;
                        seg.sack.push(SackBlock::new(a, b));
                        any = true;
                    } else {
                        break;
                    }
                }
                if !any {
                    return Err(err(lineno, "sack needs at least one a:b block"));
                }
            }
            "dsack" => {
                seg.dsack = true;
            }
            other => return Err(err(lineno, format!("unknown inject field {other:?}"))),
        }
    }
    if seg.dsack && seg.sack.is_empty() {
        return Err(err(
            lineno,
            "dsack requires a sack block (the duplicate range first)",
        ));
    }
    Ok(Action::Inject(seg))
}

fn parse_expect<'a>(
    lineno: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<Action, ScriptError> {
    let first = tokens
        .next()
        .ok_or_else(|| err(lineno, "expectation needs fields"))?;
    if first == "nothing" {
        return Ok(Action::ExpectNothing);
    }
    if first == "probe" {
        return Ok(Action::ExpectProbe);
    }
    if first != "seq" {
        return Err(err(
            lineno,
            format!("expectation must start with seq or nothing, got {first:?}"),
        ));
    }
    let range_tok = tokens.next().ok_or_else(|| err(lineno, "seq needs a:b"))?;
    let range = parse_range(lineno, range_tok)?;
    let mut exp = ExpectSeg {
        seq: Some(range),
        retrans: Some(false),
        fin: Some(false),
    };
    for tok in tokens.by_ref() {
        match tok {
            "retrans" => exp.retrans = Some(true),
            "fin" => exp.fin = Some(true),
            "any" => {
                exp.retrans = None;
                exp.fin = None;
            }
            other => return Err(err(lineno, format!("unknown expect field {other:?}"))),
        }
    }
    Ok(Action::Expect(exp))
}

/// One observed transmission during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Emitted {
    /// When the sender transmitted it.
    pub at: SimTime,
    /// The operation.
    pub op: SendOp,
}

/// The result of a successful run.
#[derive(Debug)]
pub struct RunReport {
    /// Everything the sender transmitted, in order.
    pub emitted: Vec<Emitted>,
    /// The sender in its final state (for further assertions).
    pub sender: Sender,
}

/// Execute a script against a fresh sender built from `cfg`.
///
/// Timers fire automatically between scripted events. Every transmission
/// must be consumed by a matching `>` expectation (in order, within
/// `tolerance` of the expected time); leftovers fail the run.
pub fn run(
    script: &Script,
    cfg: SenderConfig,
    tolerance: SimDuration,
) -> Result<RunReport, ScriptError> {
    let mut sender = Sender::new(script.options.apply(cfg));
    // Matches the default window of injected segments, so that a bare
    // `< ack N` counts as a pure duplicate (same window).
    sender.set_peer_rwnd(u64::MAX);
    let mut emitted: Vec<Emitted> = Vec::new();
    let mut all: Vec<Emitted> = Vec::new();
    let mut cursor = 0usize; // next unconsumed emission
    let mut now = SimTime::ZERO;

    let push_ops =
        |at: SimTime, ops: Vec<SendOp>, emitted: &mut Vec<Emitted>, all: &mut Vec<Emitted>| {
            for op in ops {
                emitted.push(Emitted { at, op });
                all.push(Emitted { at, op });
            }
        };

    for (t, lineno, action) in &script.events {
        // Fire timers up to (and including) the event time.
        while let Some(d) = sender.next_deadline() {
            if d > *t {
                break;
            }
            now = d.max(now);
            let mut ops = Vec::new();
            sender.on_tick(now, &mut ops);
            push_ops(now, ops, &mut emitted, &mut all);
            if sender.next_deadline() == Some(d) {
                break; // defensive: refuse to spin on a stuck deadline
            }
        }
        now = (*t).max(now);

        match action {
            Action::Write(bytes) => {
                sender.app_write(*bytes);
                let mut ops = Vec::new();
                sender.poll(now, &mut ops);
                push_ops(now, ops, &mut emitted, &mut all);
            }
            Action::Close => {
                sender.app_close();
                let mut ops = Vec::new();
                sender.poll(now, &mut ops);
                push_ops(now, ops, &mut emitted, &mut all);
            }
            Action::Rwnd(bytes) => {
                sender.set_peer_rwnd(*bytes);
                let mut ops = Vec::new();
                sender.poll(now, &mut ops);
                push_ops(now, ops, &mut emitted, &mut all);
            }
            Action::Inject(seg) => {
                let mut ops = Vec::new();
                sender.on_ack(now, seg, &mut ops);
                push_ops(now, ops, &mut emitted, &mut all);
            }
            Action::Expect(exp) => {
                let Some(e) = emitted.get(cursor) else {
                    return Err(err(
                        *lineno,
                        format!("expected {exp:?}, but nothing was sent"),
                    ));
                };
                match_expect(*lineno, exp, e, *t, tolerance)?;
                cursor += 1;
            }
            Action::ExpectProbe => {
                let Some(e) = emitted.get(cursor) else {
                    return Err(err(
                        *lineno,
                        "expected a window probe, but nothing was sent",
                    ));
                };
                if !matches!(e.op, SendOp::WindowProbe) {
                    return Err(err(*lineno, format!("expected a window probe, got {e:?}")));
                }
                cursor += 1;
            }
            Action::ExpectNothing => {
                if let Some(e) = emitted.get(cursor) {
                    return Err(err(
                        *lineno,
                        format!("expected nothing, but the sender transmitted {e:?}"),
                    ));
                }
            }
        }
    }

    if cursor < emitted.len() {
        return Err(err(
            0,
            format!(
                "{} unconsumed transmission(s) at end of script, first: {:?}",
                emitted.len() - cursor,
                emitted[cursor]
            ),
        ));
    }
    Ok(RunReport {
        emitted: all,
        sender,
    })
}

fn match_expect(
    lineno: usize,
    exp: &ExpectSeg,
    got: &Emitted,
    want_time: SimTime,
    tol: SimDuration,
) -> Result<(), ScriptError> {
    let SendOp::Data {
        seq,
        len,
        retrans,
        fin,
    } = got.op
    else {
        return Err(err(
            lineno,
            format!("expected a data segment, got {:?}", got.op),
        ));
    };
    if let Some((a, b)) = exp.seq {
        if seq != a || seq + len as u64 != b {
            return Err(err(
                lineno,
                format!("expected seq {a}:{b}, got {seq}:{}", seq + len as u64),
            ));
        }
    }
    if let Some(want) = exp.retrans {
        if retrans != want {
            return Err(err(
                lineno,
                format!("expected retrans={want}, got {retrans}"),
            ));
        }
    }
    if let Some(want) = exp.fin {
        if fin != want {
            return Err(err(lineno, format!("expected fin={want}, got {fin}")));
        }
    }
    let diff = if got.at > want_time {
        got.at.saturating_since(want_time)
    } else {
        want_time.saturating_since(got.at)
    };
    if diff > tol {
        return Err(err(
            lineno,
            format!(
                "timing off by {diff}: expected ~{want_time}, sent at {}",
                got.at
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CcKind;
    use crate::recovery::RecoveryMechanism;

    fn cfg() -> SenderConfig {
        SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 10,
            ..SenderConfig::default()
        }
    }

    fn run_src(src: &str, cfg: SenderConfig) -> Result<RunReport, ScriptError> {
        run(
            &parse(src).expect("parse"),
            cfg,
            SimDuration::from_millis(10),
        )
    }

    #[test]
    fn initial_window_script() {
        let src = "
            0.0 write 14480
            0.0 > seq 0:1448
            0.0 > seq 1448:2896
            0.0 > seq 2896:4344
            0.0 > seq 4344:5792
            0.0 > seq 5792:7240
            0.0 > seq 7240:8688
            0.0 > seq 8688:10136
            0.0 > seq 10136:11584
            0.0 > seq 11584:13032
            0.0 > seq 13032:14480
            0.1 > nothing
        ";
        run_src(src, cfg()).unwrap();
    }

    #[test]
    fn fast_retransmit_script() {
        let src = "
            0.000 write 7240
            0.000 > seq 0:1448
            0.000 > seq 1448:2896
            0.000 > seq 2896:4344
            0.000 > seq 4344:5792
            0.000 > seq 5792:7240
            // segment 0 is lost; three SACK dupacks trigger fast retransmit
            0.100 < ack 0 sack 1448:2896
            0.102 < ack 0 sack 1448:4344
            0.104 < ack 0 sack 1448:5792
            0.104 > seq 0:1448 retrans
            0.200 < ack 7240
        ";
        let report = run_src(src, cfg()).unwrap();
        assert_eq!(report.sender.stats().fast_recovery_count, 1);
        assert_eq!(report.sender.stats().rto_count, 0);
        assert!(report.sender.all_acked());
    }

    #[test]
    fn rto_script_with_timer_autofire() {
        // Nothing comes back: the 1s initial RTO (+granularity) fires and
        // retransmits the head.
        let src = "
            0.000 write 2896
            0.000 > seq 0:1448
            0.000 > seq 1448:2896
            0.900 > nothing
            1.010 > seq 0:1448 retrans
        ";
        let report = run_src(src, cfg()).unwrap();
        assert_eq!(report.sender.stats().rto_count, 1);
    }

    #[test]
    fn fin_rides_last_segment() {
        // Close before the write so the (single) transmission already
        // knows it is the end of the stream.
        let src = "
            0.0 close
            0.0 write 1448
            0.0 > seq 0:1448 fin
        ";
        run_src(src, cfg()).unwrap();
    }

    #[test]
    fn limited_transmit_script() {
        // cwnd-filling window; two pure dupacks release one new segment
        // each via limited transmit.
        let src = "
            0.0 write 20000
            0.0 > seq 0:1448
            0.0 > seq 1448:2896
            0.0 > seq 2896:4344
            0.0 > seq 4344:5792
            0.0 > seq 5792:7240
            0.0 > seq 7240:8688
            0.0 > seq 8688:10136
            0.0 > seq 10136:11584
            0.0 > seq 11584:13032
            0.0 > seq 13032:14480
            0.1 < ack 0
            0.1 > seq 14480:15928
            0.11 < ack 0
            0.11 > seq 15928:17376
        ";
        run_src(src, cfg()).unwrap();
    }

    #[test]
    fn srto_probe_script() {
        // Tail loss with S-RTO: the probe fires at ~2·SRTT, not the RTO.
        let src = "
            0.000 write 1448
            0.000 > seq 0:1448
            0.100 < ack 1448
            0.100 write 1448
            0.100 > seq 1448:2896
            // probe at ~100 + 2·100 = 300ms
            0.300 > seq 1448:2896 retrans
        ";
        let report = run_src(
            src,
            SenderConfig {
                recovery: RecoveryMechanism::srto(),
                ..cfg()
            },
        )
        .unwrap();
        assert_eq!(report.sender.stats().srto_probes, 1);
        assert_eq!(report.sender.stats().rto_count, 0);
    }

    #[test]
    fn unexpected_output_fails() {
        let src = "
            0.0 write 1448
            0.1 > nothing
        ";
        let e = run_src(src, cfg()).unwrap_err();
        assert!(e.message.contains("expected nothing"), "{e}");
    }

    #[test]
    fn unconsumed_output_fails() {
        let src = "0.0 write 1448";
        let e = run_src(src, cfg()).unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("unconsumed"), "{e}");
    }

    #[test]
    fn wrong_seq_fails_with_line_number() {
        let src = "
            0.0 write 1448
            0.0 > seq 0:1000
        ";
        let e = run_src(src, cfg()).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("expected seq 0:1000"), "{e}");
    }

    #[test]
    fn parse_errors_have_line_numbers() {
        assert_eq!(parse("0.0 frobnicate").unwrap_err().line, 1);
        assert_eq!(parse("0.0 write ten").unwrap_err().line, 1);
        assert_eq!(
            parse("0.5 write 10\n0.2 write 10").unwrap_err().message,
            "time moves backwards"
        );
        assert!(parse("0.0 < win 5").unwrap_err().message.contains("ack"));
        assert!(parse("0.0 > seq 5:1")
            .unwrap_err()
            .message
            .contains("range end"));
    }

    #[test]
    fn relative_times_and_comments_parse() {
        let s =
            parse("# header comment\n0.1 write 10 // inline\n+0.2 close\n+0.0 rwnd 100").unwrap();
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.events[1].0, SimTime::from_millis(300));
        assert_eq!(s.events[2].0, SimTime::from_millis(300));
    }

    #[test]
    fn dsack_injection_parses_and_runs() {
        let src = "
            0.0 write 1448
            0.0 > seq 0:1448
            1.010 > seq 0:1448 retrans
            1.1 < ack 1448 sack 0:1448 dsack
        ";
        let report = run_src(src, cfg()).unwrap();
        assert_eq!(report.sender.stats().spurious_retrans, 1);
    }
}

//! Multiple concurrent connections through one shared bottleneck.
//!
//! The single-flow driver in [`crate::sim`] models cross traffic
//! statistically (loss processes, delay bursts). This module simulates it
//! *mechanistically*: N connections share a bottleneck link pair, so
//! congestion, queueing delay and drop-tail overflow emerge from the flows'
//! own interaction — the situation behind the paper's synchronized
//! software-download load ("requests tend to be synchronized when new
//! software or patches are available") and its continuous-loss stalls
//! (bursts through routers with full buffers, §4.3).
//!
//! Topology:
//!
//! ```text
//!  server ──┐                         ┌── client 1
//!  server ──┤── shared bottleneck ────┤── client 2   (+ per-flow extra
//!  server ──┘    (one Link per dir)   └── client 3    propagation delay)
//! ```
//!
//! Each connection is one request/response exchange with its own receiver
//! configuration and recovery mechanism; the server side captures one
//! [`FlowTrace`] per connection, ready for TAPO.

use simnet::event::EventQueue;
use simnet::link::{Delivery, Link, LinkConfig};
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use tcp_trace::flow::{FlowKey, FlowTrace};
use tcp_trace::record::{Direction, TraceRecord};

use crate::conn::Host;
use crate::receiver::ReceiverConfig;
use crate::seg::{SackList, SegFlags, Segment};
use crate::sender::{SenderConfig, SenderStats};

/// One connection in the shared-bottleneck simulation.
#[derive(Debug, Clone)]
pub struct MultiFlowEntry {
    /// When the client opens the connection.
    pub start_at: SimTime,
    /// Response size in bytes (single request).
    pub response_bytes: u64,
    /// Extra one-way propagation delay for this client (its access path).
    pub extra_delay: SimDuration,
    /// Server sender configuration (mechanism, cc…).
    pub server_tx: SenderConfig,
    /// Client receiver configuration (buffer = initial window).
    pub client_rx: ReceiverConfig,
}

impl MultiFlowEntry {
    /// A flow with default stack settings.
    pub fn new(start_at: SimTime, response_bytes: u64) -> Self {
        MultiFlowEntry {
            start_at,
            response_bytes,
            extra_delay: SimDuration::ZERO,
            server_tx: SenderConfig::default(),
            client_rx: ReceiverConfig::default(),
        }
    }
}

/// Configuration of the shared-bottleneck simulation.
#[derive(Debug, Clone)]
pub struct MultiFlowSimConfig {
    /// Server→clients bottleneck.
    pub bottleneck_s2c: LinkConfig,
    /// Clients→server bottleneck.
    pub bottleneck_c2s: LinkConfig,
    /// The connections.
    pub flows: Vec<MultiFlowEntry>,
    /// Simulation cut-off.
    pub max_time: SimDuration,
}

impl Default for MultiFlowSimConfig {
    fn default() -> Self {
        MultiFlowSimConfig {
            bottleneck_s2c: LinkConfig {
                bandwidth_bps: 20_000_000,
                prop_delay: SimDuration::from_millis(40),
                queue_pkts: 100,
                ..LinkConfig::default()
            },
            bottleneck_c2s: LinkConfig {
                bandwidth_bps: 20_000_000,
                prop_delay: SimDuration::from_millis(40),
                queue_pkts: 100,
                ..LinkConfig::default()
            },
            flows: Vec::new(),
            max_time: SimDuration::from_secs(300),
        }
    }
}

/// Per-connection outcome.
#[derive(Debug, Clone)]
pub struct MultiFlowOutcome {
    /// The server-side capture for this connection.
    pub trace: FlowTrace,
    /// Whether every response byte was acknowledged before the cut-off.
    pub completed: bool,
    /// Request-issued → all-acked latency (`None` if incomplete).
    pub latency: Option<SimDuration>,
    /// Server sender counters.
    pub server_stats: SenderStats,
}

#[derive(Debug)]
enum MEv {
    ToServer(usize, Segment),
    ToClient(usize, Segment),
    TickServer(usize),
    TickClient(usize),
    Open(usize),
    SynRetrans(usize, u32),
}

struct FlowState {
    server: Host,
    client: Host,
    trace: FlowTrace,
    established: bool,
    issued_at: Option<SimTime>,
    done_at: Option<SimTime>,
    extra_delay: SimDuration,
    response_bytes: u64,
}

/// The shared-bottleneck simulation.
pub struct MultiFlowSim {
    cfg: MultiFlowSimConfig,
    q: EventQueue<MEv>,
    s2c: Link,
    c2s: Link,
    flows: Vec<FlowState>,
}

impl MultiFlowSim {
    /// Build the simulation; `seed` drives all stochastic link behaviour.
    pub fn new(cfg: MultiFlowSimConfig, seed: u64) -> Self {
        let rng = SimRng::seed(seed);
        let s2c = Link::new(cfg.bottleneck_s2c.clone(), rng.fork(1));
        let c2s = Link::new(cfg.bottleneck_c2s.clone(), rng.fork(2));
        let flows = cfg
            .flows
            .iter()
            .enumerate()
            .map(|(i, entry)| FlowState {
                server: Host::new(
                    entry.server_tx.clone(),
                    ReceiverConfig {
                        buf_bytes: 1 << 20,
                        ..ReceiverConfig::default()
                    },
                ),
                client: Host::new(SenderConfig::default(), entry.client_rx.clone()),
                trace: FlowTrace::new(FlowKey::synthetic(i as u32 + 1)),
                established: false,
                issued_at: None,
                done_at: None,
                extra_delay: entry.extra_delay,
                response_bytes: entry.response_bytes,
            })
            .collect();
        MultiFlowSim {
            cfg,
            q: EventQueue::new(),
            s2c,
            c2s,
            flows,
        }
    }

    /// Run to quiescence (or the cut-off); one outcome per connection.
    pub fn run(mut self) -> Vec<MultiFlowOutcome> {
        for (i, entry) in self.cfg.flows.iter().enumerate() {
            self.q.push(entry.start_at, MEv::Open(i));
        }
        let deadline = SimTime::ZERO + self.cfg.max_time;
        while let Some((t, ev)) = self.q.pop() {
            if t > deadline {
                break;
            }
            self.dispatch(t, ev);
            if self.flows.iter().all(|f| f.done_at.is_some()) {
                break;
            }
        }
        self.flows
            .into_iter()
            .map(|f| MultiFlowOutcome {
                completed: f.done_at.is_some(),
                latency: match (f.issued_at, f.done_at) {
                    (Some(a), Some(b)) => Some(b.saturating_since(a)),
                    _ => None,
                },
                server_stats: f.server.tx.stats(),
                trace: f.trace,
            })
            .collect()
    }

    fn dispatch(&mut self, now: SimTime, ev: MEv) {
        match ev {
            MEv::Open(i) => self.send_syn(now, i, 0),
            MEv::SynRetrans(i, attempt) => {
                if !self.flows[i].established && attempt < 6 {
                    self.send_syn(now, i, attempt);
                }
            }
            MEv::ToServer(i, seg) => self.server_receive(now, i, seg),
            MEv::ToClient(i, seg) => self.client_receive(now, i, seg),
            MEv::TickServer(i) => {
                let mut out = Vec::new();
                self.flows[i].server.on_tick(now, &mut out);
                self.server_send(now, i, out);
            }
            MEv::TickClient(i) => {
                let mut out = Vec::new();
                self.flows[i].client.on_tick(now, &mut out);
                self.client_send(now, i, out);
            }
        }
    }

    fn send_syn(&mut self, now: SimTime, i: usize, attempt: u32) {
        let syn = Segment {
            seq: 0,
            len: 0,
            flags: SegFlags::SYN,
            ack: 0,
            rwnd: self.flows[i].client.rx.rwnd(),
            sack: SackList::new(),
            dsack: false,
            probe: false,
        };
        self.client_send(now, i, vec![syn]);
        self.q.push(
            now + SimDuration::from_secs(3 << attempt),
            MEv::SynRetrans(i, attempt + 1),
        );
    }

    fn server_send(&mut self, now: SimTime, i: usize, segs: Vec<Segment>) {
        let extra = self.flows[i].extra_delay;
        for seg in segs {
            self.flows[i].trace.push(rec_of(now, Direction::Out, &seg));
            if let Delivery::Arrive(at) = self.s2c.offer(now, seg.wire_len()) {
                self.q.push(at + extra, MEv::ToClient(i, seg));
            }
        }
        if let Some(d) = self.flows[i].server.next_deadline() {
            self.q.push(d.max(now), MEv::TickServer(i));
        }
    }

    fn client_send(&mut self, now: SimTime, i: usize, segs: Vec<Segment>) {
        let extra = self.flows[i].extra_delay;
        for seg in segs {
            if let Delivery::Arrive(at) = self.c2s.offer(now, seg.wire_len()) {
                self.q.push(at + extra, MEv::ToServer(i, seg));
            }
        }
        if let Some(d) = self.flows[i].client.next_deadline() {
            self.q.push(d.max(now), MEv::TickClient(i));
        }
    }

    fn server_receive(&mut self, now: SimTime, i: usize, seg: Segment) {
        self.flows[i].trace.push(rec_of(now, Direction::In, &seg));
        if seg.flags.syn && !seg.flags.ack {
            // SYN: reply SYN-ACK, start serving on the completing ACK.
            self.flows[i].server.tx.set_peer_rwnd(seg.rwnd);
            let synack = Segment {
                seq: 0,
                len: 0,
                flags: SegFlags::SYN_ACK,
                ack: 0,
                rwnd: self.flows[i].server.rx.rwnd(),
                sack: SackList::new(),
                dsack: false,
                probe: false,
            };
            self.server_send(now, i, vec![synack]);
            return;
        }
        if !self.flows[i].established {
            self.flows[i].established = true;
            self.flows[i].issued_at = Some(now);
            // Handshake RTT seeds the estimator; the response starts now.
            let rtt = now.saturating_since(self.cfg.flows[i].start_at);
            if !rtt.is_zero() {
                self.flows[i].server.tx.seed_rtt(rtt);
            }
            let bytes = self.flows[i].response_bytes;
            self.flows[i].server.tx.app_write(bytes);
            self.flows[i].server.tx.app_close();
        }
        let mut out = Vec::new();
        self.flows[i].server.on_segment(now, &seg, &mut out);
        self.server_send(now, i, out);
        if self.flows[i].done_at.is_none() && self.flows[i].server.tx.all_acked() {
            self.flows[i].done_at = Some(now);
        }
    }

    fn client_receive(&mut self, now: SimTime, i: usize, seg: Segment) {
        if seg.flags.syn {
            // SYN-ACK: complete the handshake.
            if self.flows[i].issued_at.is_none() {
                self.flows[i].client.tx.set_peer_rwnd(seg.rwnd);
                let ack = Segment::pure_ack(0, self.flows[i].client.rx.rwnd());
                self.client_send(now, i, vec![ack]);
            }
            return;
        }
        let mut out = Vec::new();
        self.flows[i].client.on_segment(now, &seg, &mut out);
        // Clients read immediately.
        let buffered = self.flows[i].client.rx.buffered();
        if buffered > 0 {
            self.flows[i].client.app_read(now, buffered, &mut out);
        }
        self.client_send(now, i, out);
    }
}

fn rec_of(t: SimTime, dir: Direction, seg: &Segment) -> TraceRecord {
    TraceRecord {
        t,
        dir,
        seq: seg.seq,
        len: seg.len,
        flags: seg.flags,
        ack: seg.ack,
        rwnd: seg.rwnd,
        sack: seg.sack,
        dsack: seg.dsack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u64 = 1448;

    fn synchronized(n: usize, bytes: u64) -> MultiFlowSimConfig {
        MultiFlowSimConfig {
            flows: (0..n)
                .map(|_| MultiFlowEntry::new(SimTime::ZERO, bytes))
                .collect(),
            ..MultiFlowSimConfig::default()
        }
    }

    #[test]
    fn all_flows_complete_and_share_the_pipe() {
        let outcomes = MultiFlowSim::new(synchronized(8, 200 * MSS), 1).run();
        assert_eq!(outcomes.len(), 8);
        for o in &outcomes {
            assert!(o.completed);
            assert_eq!(o.trace.goodput_bytes_out(), 200 * MSS);
        }
        // Shared 20 Mbit/s: 8 × 290KB ≈ 2.3MB ⇒ at least ~0.9s of serialization.
        let slowest = outcomes.iter().filter_map(|o| o.latency).max().unwrap();
        assert!(
            slowest >= SimDuration::from_millis(900),
            "slowest {slowest}"
        );
    }

    #[test]
    fn contention_induces_losses_a_lone_flow_avoids() {
        let lone = MultiFlowSim::new(synchronized(1, 400 * MSS), 3).run();
        let contended = MultiFlowSim::new(synchronized(12, 400 * MSS), 3).run();
        let lone_retrans = lone[0].server_stats.retrans_segs;
        let total_retrans: u64 = contended.iter().map(|o| o.server_stats.retrans_segs).sum();
        assert!(
            total_retrans > lone_retrans * 4,
            "contention must induce queue-overflow losses: lone {lone_retrans}, 12 flows {total_retrans}"
        );
        for o in &contended {
            assert!(o.completed);
        }
    }

    #[test]
    fn per_flow_extra_delay_spreads_latencies() {
        let mut cfg = synchronized(2, 100 * MSS);
        cfg.flows[1].extra_delay = SimDuration::from_millis(150);
        let outcomes = MultiFlowSim::new(cfg, 5).run();
        assert!(outcomes[1].latency.unwrap() > outcomes[0].latency.unwrap());
    }

    #[test]
    fn staggered_starts_are_honoured() {
        let mut cfg = synchronized(2, 50 * MSS);
        cfg.flows[1].start_at = SimTime::from_secs(2);
        let outcomes = MultiFlowSim::new(cfg, 7).run();
        let t0 = outcomes[0].trace.start().unwrap();
        let t1 = outcomes[1].trace.start().unwrap();
        assert!(
            t1.saturating_since(t0) >= SimDuration::from_secs(2) - SimDuration::from_millis(200)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MultiFlowSim::new(synchronized(5, 100 * MSS), 11).run();
        let b = MultiFlowSim::new(synchronized(5, 100 * MSS), 11).run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trace.records, y.trace.records);
        }
    }
}

//! The TCP sender: congestion-state machine, window management, loss
//! recovery and timers, modelled on the Linux 2.6.32 stack the paper's
//! servers ran.
//!
//! The four congestion states and their transitions follow Fig. 4 of the
//! paper:
//!
//! ```text
//!            dupacks                 dupacks ≥ dupthres
//!   Open ───────────► Disorder ─────────────────────► Recovery
//!    ▲  ▲──RTO──┐        │ RTO                            │ RTO
//!    │          ▼        ▼                                ▼
//!    └─────── Loss ◄──────────────────────────────────────┘
//! ```
//!
//! Faithfulness notes (each is load-bearing for a stall class the paper
//! measures):
//!
//! * **Rate-halving Recovery** — cwnd drops by one for every second ACK
//!   until it reaches ssthresh, plus Linux's cwnd moderation
//!   (`cwnd ≤ in_flight + 1`), which is the origin of many *small-cwnd*
//!   stalls.
//! * **No re-fast-retransmit** — a segment whose retransmission is lost can
//!   only be repaired by the RTO (see [`crate::scoreboard`]), producing
//!   *f-double* stalls under native recovery.
//! * **RTO behaviour** — `cwnd := 1`, all outstanding marked lost,
//!   exponential backoff; this is the "expensive timeout" of the paper.
//! * **DSACK undo** — spurious-retransmission evidence restores cwnd
//!   (`tcp_try_undo_*`), which matters for ACK-delay stalls.

use simnet::time::SimTime;

#[cfg(test)]
use simnet::time::SimDuration;

use crate::cc::{Cc, CcKind};
use crate::recovery::RecoveryMechanism;
use crate::rtt::{RttConfig, RttEstimator, MAX_RTO_BACKOFF};
use crate::scoreboard::Scoreboard;
use crate::seg::{SackBlock, Segment, DEFAULT_MSS};

/// The Linux congestion-avoidance state machine states (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaState {
    /// Default state: no outstanding dubious events.
    Open,
    /// Dupacks/SACKs seen, below `dupthres`; window frozen, limited
    /// transmit may send new data.
    Disorder,
    /// Fast retransmit in progress; rate-halving window reduction.
    Recovery,
    /// Retransmission timer expired; slow-start from 1 MSS.
    Loss,
}

/// Sender configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SenderConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window in packets (3 on the paper's kernel).
    pub init_cwnd: u32,
    /// Hard upper bound on cwnd in packets.
    pub cwnd_clamp: u32,
    /// Congestion-avoidance algorithm (CUBIC is the 2.6.32 default).
    pub cc: CcKind,
    /// RTT estimator bounds.
    pub rtt: RttConfig,
    /// Initial duplicate-ACK threshold for fast retransmit.
    pub dupthres: u32,
    /// Adapt `dupthres` upward when reordering is detected.
    pub reordering_adapt: bool,
    /// RFC 3042 limited transmit.
    pub limited_transmit: bool,
    /// RFC 5827 early retransmit (absent from 2.6.32; off by default).
    pub early_retransmit: bool,
    /// HyStart-style delay-based slow-start exit (part of CUBIC since
    /// 2.6.29): leave slow start when RTT samples rise well above the
    /// flow's minimum, instead of overshooting the bottleneck queue by a
    /// full window.
    pub hystart: bool,
    /// TCP pacing (Wei et al., the paper's suggested continuous-loss
    /// mitigation): spread a window's transmissions across the RTT at rate
    /// `cwnd/SRTT` instead of sending back-to-back bursts. Off by default,
    /// matching the paper's kernel.
    pub pacing: bool,
    /// DSACK-based congestion-window undo.
    pub undo: bool,
    /// Retransmission-timer firing granularity: the kernel's timer wheel
    /// fires the RTO up to a jiffy late, so the observed silent gap always
    /// slightly exceeds the computed RTO. Probe timers (TLP/S-RTO) use
    /// high-resolution timers and are exact.
    pub timer_granularity: simnet::time::SimDuration,
    /// Loss-recovery mechanism (Native / TLP / S-RTO).
    pub recovery: RecoveryMechanism,
}

impl Default for SenderConfig {
    fn default() -> Self {
        SenderConfig {
            mss: DEFAULT_MSS,
            init_cwnd: 3,
            cwnd_clamp: 10_000,
            cc: CcKind::Cubic,
            rtt: RttConfig::default(),
            dupthres: 3,
            reordering_adapt: true,
            limited_transmit: true,
            early_retransmit: false,
            hystart: true,
            pacing: false,
            undo: true,
            timer_granularity: simnet::time::SimDuration::from_millis(4),
            recovery: RecoveryMechanism::Native,
        }
    }
}

/// A transmission the sender wants performed. The owning connection wraps
/// these into [`Segment`]s, filling in the reverse-path ACK fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOp {
    /// Transmit payload bytes `[seq, seq+len)`.
    Data {
        /// Stream offset.
        seq: u64,
        /// Length in bytes.
        len: u32,
        /// This is a retransmission.
        retrans: bool,
        /// Set the FIN flag (final segment of the stream).
        fin: bool,
    },
    /// Transmit a zero-window probe.
    WindowProbe,
}

/// Counters describing the sender's lifetime behaviour; the raw material for
/// Table 9 (retransmission ratios) and mechanism comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Original data segments transmitted.
    pub data_segs_sent: u64,
    /// Payload bytes transmitted (originals only).
    pub bytes_sent: u64,
    /// Retransmitted segments (all causes).
    pub retrans_segs: u64,
    /// Retransmission timer expirations.
    pub rto_count: u64,
    /// Fast-retransmit (Recovery) entries.
    pub fast_recovery_count: u64,
    /// S-RTO probe firings.
    pub srto_probes: u64,
    /// TLP probe firings.
    pub tlp_probes: u64,
    /// T-RACKs virtual-timer firings that forced fast-retransmit entry.
    pub tracks_forced: u64,
    /// DSACK-reported spurious retransmissions.
    pub spurious_retrans: u64,
    /// Congestion-window undo events.
    pub undo_count: u64,
    /// Zero-window probes sent.
    pub window_probes: u64,
}

/// Which probe timer is armed (the RTO timer is tracked separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeKind {
    Tlp,
    Srto,
    Tracks,
}

/// The TCP sender for one direction of a connection.
#[derive(Debug, Clone)]
pub struct Sender {
    cfg: SenderConfig,
    cc: Cc,
    sb: Scoreboard,
    rtt: RttEstimator,

    ca_state: CaState,
    cwnd: u32,
    ssthresh: u32,
    dupthres: u32,
    dupacks: u32,
    high_seq: u64,

    peer_rwnd: u64,

    app_avail: u64,
    app_fin: bool,
    stream_len: u64, // total bytes ever written (for FIN placement)

    rto_deadline: Option<SimTime>,
    rto_backoff: u32,
    probe_deadline: Option<(SimTime, ProbeKind)>,
    tlp_probe_out: bool,
    persist_deadline: Option<SimTime>,
    persist_backoff: u32,

    rh_ack_cnt: u32,
    lt_budget: u32,

    min_rtt: Option<simnet::time::SimDuration>,

    /// Pacing: earliest time the next packet may be released, and the
    /// armed wake-up for deferred transmissions.
    next_pace_at: SimTime,
    pace_deadline: Option<SimTime>,

    /// An outstanding S-RTO probe: `(probe seq, cwnd and ssthresh to
    /// restore if the probe proves spurious via DSACK)`.
    srto_probe_undo: Option<(u64, u32, u32)>,

    undo_marker: Option<u64>,
    undo_retrans: i64,
    marker_retrans_total: u32,
    prior_cwnd: u32,
    prior_ssthresh: u32,

    stats: SenderStats,
}

impl Sender {
    /// A fresh sender.
    pub fn new(cfg: SenderConfig) -> Self {
        let cwnd = cfg.init_cwnd;
        let rtt = RttEstimator::new(cfg.rtt);
        let cc = Cc::new(cfg.cc);
        let dupthres = cfg.dupthres;
        Sender {
            cfg,
            cc,
            sb: Scoreboard::new(),
            rtt,
            ca_state: CaState::Open,
            cwnd,
            ssthresh: u32::MAX / 2,
            dupthres,
            dupacks: 0,
            high_seq: 0,
            peer_rwnd: 0,
            app_avail: 0,
            app_fin: false,
            stream_len: 0,
            rto_deadline: None,
            rto_backoff: 0,
            probe_deadline: None,
            tlp_probe_out: false,
            persist_deadline: None,
            persist_backoff: 0,
            rh_ack_cnt: 0,
            lt_budget: 0,
            min_rtt: None,
            next_pace_at: SimTime::ZERO,
            pace_deadline: None,
            srto_probe_undo: None,
            undo_marker: None,
            undo_retrans: 0,
            marker_retrans_total: 0,
            prior_cwnd: cwnd,
            prior_ssthresh: u32::MAX / 2,
            stats: SenderStats::default(),
        }
    }

    // ------------------------------------------------------- accessors

    /// Current congestion state.
    pub fn ca_state(&self) -> CaState {
        self.ca_state
    }

    /// Congestion window in packets.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Slow-start threshold in packets.
    pub fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    /// The scoreboard (read-only).
    pub fn scoreboard(&self) -> &Scoreboard {
        &self.sb
    }

    /// The RTT estimator (read-only).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Current duplicate-ACK threshold (after reordering adaptation).
    pub fn dupthres(&self) -> u32 {
        self.dupthres
    }

    /// Peer's advertised window in bytes.
    pub fn peer_rwnd(&self) -> u64 {
        self.peer_rwnd
    }

    /// True once every written byte has been cumulatively acknowledged.
    pub fn all_acked(&self) -> bool {
        self.app_avail == 0 && self.sb.is_empty()
    }

    /// Bytes written by the application but not yet transmitted.
    pub fn app_backlog(&self) -> u64 {
        self.app_avail
    }

    // ----------------------------------------------------- app interface

    /// Learn the peer's initial window (from its SYN).
    pub fn set_peer_rwnd(&mut self, bytes: u64) {
        self.peer_rwnd = bytes;
    }

    /// Seed the RTT estimator from the handshake round trip (Linux seeds
    /// SRTT from the SYN-ACK → ACK sample), giving the first data packet a
    /// realistic RTO instead of the 1s default.
    pub fn seed_rtt(&mut self, sample: simnet::time::SimDuration) {
        self.rtt.observe(sample);
    }

    /// Make `bytes` more application data available for transmission.
    /// Call [`Sender::poll`] afterwards to transmit.
    pub fn app_write(&mut self, bytes: u64) {
        self.app_avail += bytes;
        self.stream_len += bytes;
    }

    /// Mark the stream finished: the final data segment will carry FIN.
    pub fn app_close(&mut self) {
        self.app_fin = true;
    }

    // ------------------------------------------------------ ACK handling

    /// Process the acknowledgment fields of an incoming segment and
    /// transmit whatever becomes allowed.
    pub fn on_ack(&mut self, now: SimTime, seg: &Segment, out: &mut Vec<SendOp>) {
        let old_rwnd = self.peer_rwnd;
        self.peer_rwnd = seg.rwnd;
        if self.peer_rwnd > 0 {
            self.persist_deadline = None;
            self.persist_backoff = 0;
        }

        // DSACK: evidence that a (re)transmission was unnecessary. This
        // feeds the undo machinery only — a DSACK alone is not reordering
        // evidence (probes are *expected* to be occasionally spurious), so
        // it must not inflate `dupthres`.
        if seg.dsack {
            self.stats.spurious_retrans += 1;
            if self.undo_marker.is_some() {
                self.undo_retrans -= 1;
            }
            // A DSACK covering an S-RTO probe proves it spurious: restore
            // the window the probe reduced, even if the short Recovery
            // episode it opened has already completed.
            if let (Some((pseq, pcwnd, pssthresh)), Some(b)) =
                (self.srto_probe_undo, seg.sack.first())
            {
                if b.start <= pseq && pseq < b.end {
                    self.cwnd = self.cwnd.max(pcwnd);
                    self.ssthresh = self.ssthresh.max(pssthresh);
                    if self.ca_state == CaState::Recovery {
                        self.sb.unmark_all_lost();
                        self.ca_state = if self.sb.sacked_out() > 0 {
                            CaState::Disorder
                        } else {
                            CaState::Open
                        };
                        self.undo_marker = None;
                    }
                    self.stats.undo_count += 1;
                    self.srto_probe_undo = None;
                }
            }
        }

        let blocks: &[SackBlock] = if seg.dsack && !seg.sack.is_empty() {
            &seg.sack[1..]
        } else {
            &seg.sack[..]
        };
        let sres = self.sb.apply_sack(blocks);
        if sres.sacked_was_lost && self.cfg.reordering_adapt {
            self.dupthres = (self.dupthres + 1).min(8);
        }

        let prior_una = self.sb.snd_una();
        let ares = self.sb.ack_to(now, seg.ack);
        if ares.acked_lost && self.cfg.reordering_adapt {
            self.dupthres = (self.dupthres + 1).min(8);
        }
        if let Some(sample) = ares.rtt_sample {
            self.rtt.observe(sample);
            let base = self.min_rtt.map_or(sample, |m| m.min(sample));
            self.min_rtt = Some(base);
            // HyStart delay-based slow-start exit: queue is building.
            if self.cfg.hystart
                && self.cwnd < self.ssthresh
                && self.cwnd >= 16
                && sample > base.saturating_mul(3) / 2
            {
                self.ssthresh = self.cwnd;
            }
        }

        let advanced = seg.ack > prior_una;
        if advanced {
            self.rto_backoff = 0;
            self.tlp_probe_out = false;
        }

        // A duplicate ACK: no forward progress, and either SACK information
        // or a pure same-window duplicate.
        let is_dup = !advanced
            && !self.sb.is_empty()
            && (sres.newly_sacked > 0
                || (seg.len == 0 && seg.rwnd == old_rwnd && seg.ack == prior_una));
        if is_dup {
            self.dupacks += 1;
        }

        let prior_state = self.ca_state;
        match self.ca_state {
            CaState::Open | CaState::Disorder => {
                if is_dup || self.sb.sacked_out() > 0 {
                    if self.ca_state == CaState::Open {
                        self.ca_state = CaState::Disorder;
                        self.lt_budget = 0;
                    }
                    // RFC 3042 limited transmit matters for SACK-less
                    // dupacks; with SACK the pipe shrink already frees a
                    // transmission slot.
                    if is_dup && sres.newly_sacked == 0 && self.cfg.limited_transmit {
                        self.lt_budget = (self.lt_budget + 1).min(2);
                    }
                    if self.dup_count() >= self.effective_dupthres() {
                        self.enter_recovery(now);
                    }
                }
                if advanced {
                    self.dupacks = 0;
                    if self.ca_state == CaState::Open {
                        self.grow_cwnd(now, ares.newly_acked);
                    } else if self.sb.sacked_out() == 0 {
                        // Holes all filled: back to Open (and grow —
                        // Disorder withheld growth only transiently).
                        self.ca_state = CaState::Open;
                        self.grow_cwnd(now, ares.newly_acked);
                    }
                }
            }
            CaState::Recovery => {
                if self.try_undo(now) {
                    // Spurious recovery; window restored.
                } else if advanced && self.sb.snd_una() >= self.high_seq {
                    self.exit_recovery();
                    self.grow_cwnd(now, 0);
                } else {
                    // Partial ACK or dupack inside Recovery: keep marking
                    // losses and halving the rate.
                    self.sb.mark_lost_fack(self.dupthres, self.cfg.mss);
                    if advanced {
                        // NewReno partial ACK: the next hole is lost too.
                        self.sb.mark_lost_head();
                    }
                    self.rate_halve();
                }
            }
            CaState::Loss => {
                if self.try_undo(now) {
                    // Spurious RTO; window restored.
                } else if advanced {
                    self.grow_cwnd(now, ares.newly_acked);
                    if self.sb.snd_una() >= self.high_seq {
                        self.ca_state = CaState::Open;
                        self.dupacks = 0;
                        self.undo_marker = None;
                    }
                }
            }
        }

        self.poll(now, out);

        // Timer management: restart on forward progress or a congestion-state
        // change (entering Recovery must cancel a pending TLP probe, leaving
        // Loss must drop the backed-off deadline); otherwise only arm if
        // nothing is pending. T-RACKs additionally re-arms when a dup-ACK
        // first pushes the evidence over its arming threshold — the state
        // may not change (Disorder → Disorder) yet the pending native RTO
        // must be replaced by the short virtual timer.
        if advanced
            || self.ca_state != prior_state
            || (self.rto_deadline.is_none() && self.probe_deadline.is_none())
            || (is_dup && self.tracks_wants_arm())
        {
            self.arm_timers(now);
        }
    }

    /// True when the T-RACKs virtual timer should be armed but is not yet
    /// (dup-ACK evidence crossed the threshold while the native RTO was
    /// pending).
    fn tracks_wants_arm(&self) -> bool {
        let RecoveryMechanism::Tracks(tr) = self.cfg.recovery else {
            return false;
        };
        (self.ca_state == CaState::Open || self.ca_state == CaState::Disorder)
            && self.dup_count() >= tr.dupack_arm
            && self.sb.packets_out() <= tr.max_packets_out
            && self.probe_deadline.is_none()
    }

    fn dup_count(&self) -> u32 {
        self.dupacks.max(self.sb.sacked_out())
    }

    fn effective_dupthres(&self) -> u32 {
        if self.cfg.early_retransmit && self.sb.packets_out() < 4 && self.app_avail == 0 {
            self.sb.packets_out().saturating_sub(1).max(1)
        } else {
            self.dupthres
        }
    }

    fn grow_cwnd(&mut self, now: SimTime, acked: u32) {
        if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd + acked).min(self.cfg.cwnd_clamp);
        } else {
            self.cwnd = self
                .cc
                .cong_avoid(now, self.cwnd, acked, self.cfg.cwnd_clamp);
        }
    }

    fn enter_recovery(&mut self, _now: SimTime) {
        self.prior_cwnd = self.cwnd;
        self.prior_ssthresh = self.ssthresh;
        self.undo_marker = Some(self.sb.snd_una());
        self.undo_retrans = 0;
        self.marker_retrans_total = 0;
        self.ssthresh = self.cc.ssthresh(self.cwnd);
        self.cc.on_congestion_event(self.cwnd);
        self.high_seq = self.sb.snd_nxt();
        self.ca_state = CaState::Recovery;
        self.rh_ack_cnt = 0;
        self.stats.fast_recovery_count += 1;
        self.sb.mark_lost_fack(self.dupthres, self.cfg.mss);
        self.sb.mark_lost_head();
    }

    fn exit_recovery(&mut self) {
        // tcp_complete_cwr: finish the halving.
        self.cwnd = self.cwnd.min(self.ssthresh).max(1);
        self.ca_state = CaState::Open;
        self.dupacks = 0;
        self.undo_marker = None;
    }

    fn rate_halve(&mut self) {
        self.rh_ack_cnt += 1;
        if self.rh_ack_cnt >= 2 {
            self.rh_ack_cnt = 0;
            if self.cwnd > self.ssthresh {
                self.cwnd -= 1;
            }
        }
        // Linux cwnd moderation: never keep cwnd far above what is actually
        // in flight during recovery.
        self.cwnd = self.cwnd.min(self.sb.in_flight() + 1).max(1);
    }

    fn try_undo(&mut self, _now: SimTime) -> bool {
        if !self.cfg.undo {
            return false;
        }
        let Some(_marker) = self.undo_marker else {
            return false;
        };
        if self.marker_retrans_total == 0 || self.undo_retrans > 0 {
            return false;
        }
        // Every retransmission since the marker was reported spurious:
        // the congestion event was false. Restore the window.
        self.cwnd = self.cwnd.max(self.prior_cwnd);
        self.ssthresh = self.ssthresh.max(self.prior_ssthresh);
        self.sb.unmark_all_lost();
        self.ca_state = if self.sb.sacked_out() > 0 {
            CaState::Disorder
        } else {
            CaState::Open
        };
        self.undo_marker = None;
        self.dupacks = 0;
        self.stats.undo_count += 1;
        true
    }

    // ------------------------------------------------------ transmission

    /// Pacing gate: may a packet be released at `now`? On release the pace
    /// clock advances by one inter-packet interval (`SRTT / cwnd`), with at
    /// most one interval of burst credit accumulated while idle.
    fn pace_allows(&mut self, now: SimTime) -> bool {
        if !self.cfg.pacing {
            return true;
        }
        if now < self.next_pace_at {
            let d = self.next_pace_at;
            self.pace_deadline = Some(self.pace_deadline.map_or(d, |p| p.min(d)));
            return false;
        }
        let srtt = self
            .rtt
            .srtt()
            .unwrap_or(simnet::time::SimDuration::from_millis(100));
        let interval = srtt / self.cwnd.max(1) as u64;
        self.next_pace_at = self.next_pace_at.max(now - interval) + interval;
        true
    }

    /// Transmit everything the windows currently allow.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<SendOp>) {
        let had_outstanding = !self.sb.is_empty();

        // 1. Retransmissions of lost segments.
        while self.sb.in_flight() < self.cwnd {
            let Some(seq) = self.sb.next_lost_seq() else {
                break;
            };
            if !self.pace_allows(now) {
                break;
            }
            let by_rto = self.ca_state == CaState::Loss;
            let fast = self.ca_state == CaState::Recovery;
            let len = self
                .sb
                .on_retransmit(now, seq, by_rto, fast)
                .expect("seq outstanding");
            self.note_retransmission();
            out.push(SendOp::Data {
                seq,
                len,
                retrans: true,
                fin: self.fin_at(seq + len as u64),
            });
        }

        // 2. New data.
        while self.app_avail > 0 {
            if !self.may_send_new() {
                break;
            }
            let len = (self.app_avail.min(self.cfg.mss as u64)) as u32;
            // Receiver-window check in bytes.
            if self.sb.snd_nxt() + len as u64 - self.sb.snd_una() > self.peer_rwnd {
                break;
            }
            if !self.pace_allows(now) {
                break;
            }
            if self.ca_state == CaState::Disorder && self.sb.in_flight() >= self.cwnd {
                // This transmission rides on limited-transmit budget.
                self.lt_budget -= 1;
            }
            let seq = self.sb.transmit_new(now, len);
            self.app_avail -= len as u64;
            self.stats.data_segs_sent += 1;
            self.stats.bytes_sent += len as u64;
            out.push(SendOp::Data {
                seq,
                len,
                retrans: false,
                fin: self.fin_at(seq + len as u64),
            });
        }

        // 3. Zero-window persist timer.
        if self.app_avail > 0
            && self.sb.is_empty()
            && self.peer_rwnd < self.cfg.mss as u64
            && self.persist_deadline.is_none()
        {
            self.persist_deadline = Some(now + self.rtt.rto_backed_off(self.persist_backoff));
        }

        if !had_outstanding && !self.sb.is_empty() {
            self.arm_timers(now);
        }
        if self.sb.is_empty() {
            self.rto_deadline = None;
            self.probe_deadline = None;
        }
    }

    fn fin_at(&self, seq_end: u64) -> bool {
        self.app_fin && self.app_avail == 0 && seq_end == self.stream_len
    }

    fn may_send_new(&self) -> bool {
        if self.sb.in_flight() < self.cwnd {
            return true;
        }
        self.ca_state == CaState::Disorder && self.cfg.limited_transmit && self.lt_budget > 0
    }

    fn note_retransmission(&mut self) {
        self.stats.retrans_segs += 1;
        if self.undo_marker.is_some() {
            self.undo_retrans += 1;
            self.marker_retrans_total += 1;
        }
    }

    // ----------------------------------------------------------- timers

    /// The RTO deadline from `now`, including the timer-wheel granularity.
    fn rto_deadline_from(&self, now: SimTime) -> SimTime {
        now + self.rtt.rto_backed_off(self.rto_backoff) + self.cfg.timer_granularity
    }

    /// The RTO deadline anchored at the head segment's last transmission
    /// (Linux's `tcp_rearm_rto` offsets the elapsed time, so a probe does
    /// not push the timeout a full extra RTO into the future).
    fn rto_deadline_from_head(&self, now: SimTime) -> SimTime {
        let anchor = self.sb.head().map(|h| h.last_tx).unwrap_or(now);
        let deadline =
            anchor + self.rtt.rto_backed_off(self.rto_backoff) + self.cfg.timer_granularity;
        deadline.max(now + simnet::time::SimDuration::from_millis(1))
    }

    /// Arm the retransmission or probe timer per the configured recovery
    /// mechanism (S-RTO Algorithm 1's `SET_SRTO`).
    fn arm_timers(&mut self, now: SimTime) {
        if self.sb.is_empty() {
            self.rto_deadline = None;
            self.probe_deadline = None;
            return;
        }
        let rto = self.rtt.rto_backed_off(self.rto_backoff);
        match self.cfg.recovery {
            RecoveryMechanism::Native => {
                self.rto_deadline = Some(self.rto_deadline_from(now));
                self.probe_deadline = None;
            }
            RecoveryMechanism::Tlp(tlp) => {
                if self.ca_state == CaState::Open && !self.tlp_probe_out {
                    let srtt = self.rtt.srtt().unwrap_or(rto / 2);
                    let mut pto = srtt.saturating_mul(2).max(tlp.min_pto);
                    if self.sb.packets_out() == 1 {
                        pto += tlp.delack_allowance;
                    }
                    pto = pto.min(rto);
                    self.probe_deadline = Some((now + pto, ProbeKind::Tlp));
                    self.rto_deadline = None;
                } else {
                    self.rto_deadline = Some(self.rto_deadline_from(now));
                    self.probe_deadline = None;
                }
            }
            RecoveryMechanism::Srto(srto) => {
                let head_rto_retransmitted = self.sb.head().is_some_and(|h| h.ever_rto_retrans);
                if !head_rto_retransmitted && self.sb.packets_out() < srto.t1_packets {
                    let srtt = self.rtt.srtt().unwrap_or(rto / 2);
                    let probe = srtt.mul_f64(srto.probe_rtt_mult).min(rto);
                    self.probe_deadline = Some((now + probe, ProbeKind::Srto));
                    self.rto_deadline = None;
                } else {
                    self.rto_deadline = Some(self.rto_deadline_from(now));
                    self.probe_deadline = None;
                }
            }
            RecoveryMechanism::Tracks(tr) => {
                // ACK-state-driven: the virtual timer needs positive
                // dup-ACK evidence and a flow still short of fast
                // retransmit (Open/Disorder). Everything else is native.
                let pre_recovery =
                    self.ca_state == CaState::Open || self.ca_state == CaState::Disorder;
                if pre_recovery
                    && self.dup_count() >= tr.dupack_arm
                    && self.sb.packets_out() <= tr.max_packets_out
                {
                    let srtt = self.rtt.srtt().unwrap_or(rto / 2);
                    let delay = srtt.mul_f64(tr.timer_rtt_mult).max(tr.min_timeout).min(rto);
                    self.probe_deadline = Some((now + delay, ProbeKind::Tracks));
                    self.rto_deadline = None;
                } else {
                    self.rto_deadline = Some(self.rto_deadline_from(now));
                    self.probe_deadline = None;
                }
            }
        }
    }

    /// The earliest pending timer deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut d = self.rto_deadline;
        if let Some((p, _)) = self.probe_deadline {
            d = Some(d.map_or(p, |x| x.min(p)));
        }
        if let Some(p) = self.persist_deadline {
            d = Some(d.map_or(p, |x| x.min(p)));
        }
        if let Some(p) = self.pace_deadline {
            d = Some(d.map_or(p, |x| x.min(p)));
        }
        d
    }

    /// Fire any expired timers.
    pub fn on_tick(&mut self, now: SimTime, out: &mut Vec<SendOp>) {
        if let Some(deadline) = self.pace_deadline {
            if now >= deadline {
                self.pace_deadline = None;
                self.poll(now, out);
            }
        }
        if let Some((deadline, kind)) = self.probe_deadline {
            if now >= deadline {
                self.probe_deadline = None;
                match kind {
                    ProbeKind::Srto => self.trigger_srto(now, out),
                    ProbeKind::Tlp => self.trigger_tlp(now, out),
                    ProbeKind::Tracks => self.trigger_tracks(now, out),
                }
            }
        }
        if let Some(deadline) = self.rto_deadline {
            if now >= deadline {
                self.rto_deadline = None;
                self.on_rto(now, out);
            }
        }
        if let Some(deadline) = self.persist_deadline {
            if now >= deadline {
                self.persist_deadline = None;
                if self.peer_rwnd < self.cfg.mss as u64 && self.app_avail > 0 && self.sb.is_empty()
                {
                    out.push(SendOp::WindowProbe);
                    self.stats.window_probes += 1;
                    self.persist_backoff = (self.persist_backoff + 1).min(MAX_RTO_BACKOFF);
                    self.persist_deadline =
                        Some(now + self.rtt.rto_backed_off(self.persist_backoff));
                }
            }
        }
    }

    /// S-RTO Algorithm 1, `TRIGGER_SRTO`: retransmit the first
    /// unacknowledged packet, conditionally halve cwnd, enter Recovery, and
    /// fall back to the native RTO.
    fn trigger_srto(&mut self, now: SimTime, out: &mut Vec<SendOp>) {
        let Some(head) = self.sb.head() else {
            self.arm_timers(now);
            return;
        };
        let seq = head.seq;
        let srto = match self.cfg.recovery {
            RecoveryMechanism::Srto(c) => c,
            _ => unreachable!("srto probe armed without srto mechanism"),
        };
        // Save undo state *before* any window reduction, so that a
        // DSACK-proven spurious probe restores the full window. The probe
        // keeps its own undo record because the Recovery episode it starts
        // may complete (clearing the generic marker) before the DSACK for
        // the probe arrives.
        if self.ca_state != CaState::Recovery {
            self.srto_probe_undo = Some((seq, self.cwnd, self.ssthresh));
            if self.undo_marker.is_none() {
                self.prior_cwnd = self.cwnd;
                self.prior_ssthresh = self.ssthresh;
                self.undo_marker = Some(self.sb.snd_una());
                self.undo_retrans = 0;
                self.marker_retrans_total = 0;
            }
        }

        // Assume the head is lost.
        self.sb.mark_lost_head();
        let len = self
            .sb
            .on_retransmit(now, seq, false, false)
            .expect("head outstanding");
        self.note_retransmission();
        self.stats.srto_probes += 1;
        out.push(SendOp::Data {
            seq,
            len,
            retrans: true,
            fin: self.fin_at(seq + len as u64),
        });

        if self.cwnd > srto.t2_cwnd && self.ca_state != CaState::Recovery {
            self.cwnd = (self.cwnd / 2).max(1);
            self.ssthresh = self.cwnd.max(2);
            self.cc.on_congestion_event(self.cwnd);
        }
        if self.ca_state != CaState::Recovery {
            self.high_seq = self.sb.snd_nxt();
        }
        self.ca_state = CaState::Recovery;
        // timer ← native_rto (anchored at the head's retransmission time).
        self.rto_deadline = Some(self.rto_deadline_from_head(now));
        self.probe_deadline = None;
    }

    /// TLP probe: transmit new data if available, else retransmit the
    /// highest outstanding segment. Open state only.
    fn trigger_tlp(&mut self, now: SimTime, out: &mut Vec<SendOp>) {
        if self.ca_state != CaState::Open || self.sb.is_empty() {
            self.arm_timers(now);
            return;
        }
        self.tlp_probe_out = true;
        self.stats.tlp_probes += 1;
        if self.app_avail > 0
            && self.sb.snd_nxt() + self.cfg.mss as u64 - self.sb.snd_una() <= self.peer_rwnd
        {
            let len = (self.app_avail.min(self.cfg.mss as u64)) as u32;
            let seq = self.sb.transmit_new(now, len);
            self.app_avail -= len as u64;
            self.stats.data_segs_sent += 1;
            self.stats.bytes_sent += len as u64;
            out.push(SendOp::Data {
                seq,
                len,
                retrans: false,
                fin: self.fin_at(seq + len as u64),
            });
        } else {
            let last = self.sb.iter().last().expect("non-empty");
            let (seq, len) = (last.seq, last.len);
            self.sb.on_retransmit(now, seq, false, false);
            self.note_retransmission();
            out.push(SendOp::Data {
                seq,
                len,
                retrans: true,
                fin: self.fin_at(seq + len as u64),
            });
        }
        // Fall back to the RTO, anchored at the head's transmission time so
        // the probe does not delay an eventual timeout by a full RTO.
        self.rto_deadline = Some(self.rto_deadline_from_head(now));
        self.probe_deadline = None;
    }

    /// T-RACKs virtual timer: the dup-ACK evidence that armed it never
    /// reached `dupthres`, so force the fast-retransmit entry those missing
    /// duplicates would have triggered — full `enter_recovery` semantics
    /// (ssthresh reduction, loss marking, head retransmission via `poll`) —
    /// then fall back to the head-anchored native RTO.
    fn trigger_tracks(&mut self, now: SimTime, out: &mut Vec<SendOp>) {
        let still_armed = match self.cfg.recovery {
            RecoveryMechanism::Tracks(tr) => {
                self.dup_count() >= tr.dupack_arm && self.sb.packets_out() <= tr.max_packets_out
            }
            _ => unreachable!("tracks timer armed without tracks mechanism"),
        };
        let pre_recovery = self.ca_state == CaState::Open || self.ca_state == CaState::Disorder;
        if self.sb.is_empty() || !pre_recovery || !still_armed {
            self.arm_timers(now);
            return;
        }
        self.stats.tracks_forced += 1;
        // Forced fast-retransmit entry, but with head-only loss marking:
        // the dup-ACK evidence is below `dupthres`, so a full FACK sweep
        // would turn one suspected hole into a burst of speculative
        // retransmissions (and on a bursty path, into real drops that only
        // the RTO can repair — the f-double trap). If more holes are real,
        // the dupacks that keep arriving in Recovery mark them normally.
        self.prior_cwnd = self.cwnd;
        self.prior_ssthresh = self.ssthresh;
        self.undo_marker = Some(self.sb.snd_una());
        self.undo_retrans = 0;
        self.marker_retrans_total = 0;
        self.ssthresh = self.cc.ssthresh(self.cwnd);
        self.cc.on_congestion_event(self.cwnd);
        self.high_seq = self.sb.snd_nxt();
        self.ca_state = CaState::Recovery;
        self.rh_ack_cnt = 0;
        self.stats.fast_recovery_count += 1;
        self.sb.mark_lost_head();
        self.poll(now, out);
        self.rto_deadline = Some(self.rto_deadline_from_head(now));
        self.probe_deadline = None;
    }

    /// Retransmission timeout (`tcp_retransmit_timer` + `tcp_enter_loss`).
    fn on_rto(&mut self, now: SimTime, out: &mut Vec<SendOp>) {
        if self.sb.is_empty() {
            return;
        }
        self.stats.rto_count += 1;
        self.srto_probe_undo = None;
        if self.ca_state != CaState::Loss {
            self.prior_cwnd = self.cwnd;
            self.prior_ssthresh = self.ssthresh;
            self.undo_marker = Some(self.sb.snd_una());
            self.undo_retrans = 0;
            self.marker_retrans_total = 0;
            self.ssthresh = self.cc.ssthresh(self.cwnd);
            self.cc.on_congestion_event(self.cwnd);
        }
        self.ca_state = CaState::Loss;
        self.high_seq = self.sb.snd_nxt();
        self.cwnd = 1;
        self.dupacks = 0;
        self.tlp_probe_out = false;
        self.sb.mark_all_lost();
        self.rto_backoff = (self.rto_backoff + 1).min(MAX_RTO_BACKOFF);
        self.poll(now, out);
        self.rto_deadline = Some(self.rto_deadline_from(now));
        self.probe_deadline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    fn reno_sender() -> Sender {
        let mut s = Sender::new(SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 10,
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(1 << 20);
        s
    }

    fn ack(ackno: u64, rwnd: u64) -> Segment {
        Segment::pure_ack(ackno, rwnd)
    }

    fn sack_ack(ackno: u64, rwnd: u64, blocks: &[(u64, u64)]) -> Segment {
        let mut s = Segment::pure_ack(ackno, rwnd);
        s.sack = blocks.iter().map(|&(a, b)| SackBlock::new(a, b)).collect();
        s
    }

    /// Transmit `n` MSS of data at time `t`, returning the emitted ops.
    fn send_data(s: &mut Sender, t: SimTime, n: u32) -> Vec<SendOp> {
        s.app_write(n as u64 * DEFAULT_MSS as u64);
        let mut out = Vec::new();
        s.poll(t, &mut out);
        out
    }

    #[test]
    fn initial_send_respects_init_cwnd() {
        let mut s = Sender::new(SenderConfig::default());
        s.set_peer_rwnd(1 << 20);
        let ops = send_data(&mut s, ms(0), 10);
        assert_eq!(ops.len(), 3); // init_cwnd = 3
        assert_eq!(s.scoreboard().packets_out(), 3);
        assert!(s.next_deadline().is_some(), "RTO armed");
    }

    #[test]
    fn rwnd_limits_bytes_in_flight() {
        let mut s = Sender::new(SenderConfig {
            init_cwnd: 100,
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(3 * DEFAULT_MSS as u64);
        let ops = send_data(&mut s, ms(0), 10);
        assert_eq!(ops.len(), 3, "limited by peer rwnd");
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = reno_sender();
        let ops = send_data(&mut s, ms(0), 100);
        assert_eq!(ops.len(), 10);
        // ACK all 10: cwnd 10 → 20 in slow start.
        let mut out = Vec::new();
        s.on_ack(ms(100), &ack(10 * DEFAULT_MSS as u64, 1 << 20), &mut out);
        assert_eq!(s.cwnd(), 20);
        assert_eq!(out.len(), 20, "sends a full new window");
    }

    #[test]
    fn dupacks_move_open_to_disorder_then_recovery() {
        let mut s = reno_sender();
        send_data(&mut s, ms(0), 10);
        let mss = DEFAULT_MSS as u64;
        let mut out = Vec::new();
        // SACK of segment 1 (segment 0 missing).
        s.on_ack(ms(100), &sack_ack(0, 1 << 20, &[(mss, 2 * mss)]), &mut out);
        assert_eq!(s.ca_state(), CaState::Disorder);
        s.on_ack(ms(101), &sack_ack(0, 1 << 20, &[(mss, 3 * mss)]), &mut out);
        assert_eq!(s.ca_state(), CaState::Disorder);
        out.clear();
        s.on_ack(ms(102), &sack_ack(0, 1 << 20, &[(mss, 4 * mss)]), &mut out);
        assert_eq!(s.ca_state(), CaState::Recovery);
        // Head must have been fast-retransmitted.
        assert!(out.iter().any(|op| matches!(
            op,
            SendOp::Data {
                seq: 0,
                retrans: true,
                ..
            }
        )));
        assert_eq!(s.stats().fast_recovery_count, 1);
        assert_eq!(s.ssthresh(), 5); // reno halves cwnd 10 → 5
    }

    #[test]
    fn recovery_completes_and_sets_cwnd_to_ssthresh() {
        let mut s = reno_sender();
        send_data(&mut s, ms(0), 10);
        let mss = DEFAULT_MSS as u64;
        let mut out = Vec::new();
        for i in 1..=3 {
            s.on_ack(
                ms(100 + i),
                &sack_ack(0, 1 << 20, &[(mss, (1 + i) * mss)]),
                &mut out,
            );
        }
        assert_eq!(s.ca_state(), CaState::Recovery);
        // Cumulative ACK of everything ends recovery.
        s.on_ack(ms(200), &ack(10 * mss, 1 << 20), &mut out);
        assert_eq!(s.ca_state(), CaState::Open);
        assert_eq!(s.cwnd(), s.ssthresh());
    }

    #[test]
    fn limited_transmit_sends_new_data_on_first_two_dupacks() {
        let mut s = reno_sender();
        // 10 outstanding, more data waiting.
        s.app_write(20 * DEFAULT_MSS as u64);
        let mut out = Vec::new();
        s.poll(ms(0), &mut out);
        assert_eq!(out.len(), 10);
        let mss = DEFAULT_MSS as u64;
        out.clear();
        s.on_ack(ms(100), &sack_ack(0, 1 << 20, &[(mss, 2 * mss)]), &mut out);
        // cwnd full (in_flight only dropped by the sack), limited transmit
        // allows one new segment.
        assert_eq!(
            out.iter()
                .filter(|op| matches!(op, SendOp::Data { retrans: false, .. }))
                .count(),
            1
        );
    }

    #[test]
    fn rto_enters_loss_collapses_cwnd_and_retransmits_head() {
        let mut s = reno_sender();
        send_data(&mut s, ms(0), 10);
        let deadline = s.next_deadline().expect("rto armed");
        let mut out = Vec::new();
        s.on_tick(deadline, &mut out);
        assert_eq!(s.ca_state(), CaState::Loss);
        assert_eq!(s.cwnd(), 1);
        assert_eq!(s.stats().rto_count, 1);
        assert_eq!(
            out.iter()
                .filter(|op| matches!(
                    op,
                    SendOp::Data {
                        seq: 0,
                        retrans: true,
                        ..
                    }
                ))
                .count(),
            1
        );
        // Backoff doubles the next deadline.
        let d2 = s.next_deadline().unwrap();
        assert!(d2 > deadline);
    }

    #[test]
    fn rto_backoff_is_exponential() {
        let mut s = reno_sender();
        send_data(&mut s, ms(0), 1);
        let d1 = s.next_deadline().unwrap();
        let mut out = Vec::new();
        s.on_tick(d1, &mut out);
        let d2 = s.next_deadline().unwrap();
        s.on_tick(d2, &mut out);
        let d3 = s.next_deadline().unwrap();
        // Gaps are RTO + one timer-granularity tick; the RTO part doubles.
        let g = SenderConfig::default().timer_granularity;
        let gap1 = (d2 - d1) - g;
        let gap2 = (d3 - d2) - g;
        assert_eq!(gap2.as_micros(), gap1.as_micros() * 2);
    }

    #[test]
    fn loss_recovery_slow_starts_back() {
        let mut s = reno_sender();
        send_data(&mut s, ms(0), 4);
        let mss = DEFAULT_MSS as u64;
        let mut out = Vec::new();
        let d = s.next_deadline().unwrap();
        s.on_tick(d, &mut out);
        assert_eq!(s.ca_state(), CaState::Loss);
        // ACK the retransmitted head: slow start growth, more retransmits.
        out.clear();
        s.on_ack(
            d + SimDuration::from_millis(100),
            &ack(mss, 1 << 20),
            &mut out,
        );
        assert_eq!(s.cwnd(), 2);
        assert_eq!(s.ca_state(), CaState::Loss);
        // ACK everything: back to Open.
        s.on_ack(
            d + SimDuration::from_millis(200),
            &ack(4 * mss, 1 << 20),
            &mut out,
        );
        assert_eq!(s.ca_state(), CaState::Open);
    }

    #[test]
    fn dropped_retransmission_waits_for_rto_natively() {
        // The f-double scenario: head lost, fast-retransmitted, the
        // retransmission is lost too. Further dupacks must NOT trigger
        // another retransmission; only the RTO repairs it.
        let mut s = reno_sender();
        send_data(&mut s, ms(0), 10);
        let mss = DEFAULT_MSS as u64;
        let mut out = Vec::new();
        for i in 1..=3u64 {
            s.on_ack(
                ms(100 + i),
                &sack_ack(0, 1 << 20, &[(mss, (1 + i) * mss)]),
                &mut out,
            );
        }
        assert_eq!(s.ca_state(), CaState::Recovery);
        let retrans_before = s.stats().retrans_segs;
        out.clear();
        // More dupacks (the retransmission was dropped).
        for i in 4..=9u64 {
            s.on_ack(
                ms(100 + i),
                &sack_ack(0, 1 << 20, &[(mss, (1 + i) * mss)]),
                &mut out,
            );
        }
        assert_eq!(
            s.stats().retrans_segs,
            retrans_before,
            "native sender must not re-retransmit seq 0 on dupacks"
        );
        assert!(out
            .iter()
            .all(|op| !matches!(op, SendOp::Data { seq: 0, .. })));
        // Only the RTO repairs it.
        let d = s.next_deadline().unwrap();
        out.clear();
        s.on_tick(d, &mut out);
        assert!(out.iter().any(|op| matches!(
            op,
            SendOp::Data {
                seq: 0,
                retrans: true,
                ..
            }
        )));
        let head = s.scoreboard().seg_at(0).unwrap();
        assert_eq!(head.retrans_count, 2);
        assert!(head.ever_rto_retrans);
        assert_eq!(head.first_retrans_fast, Some(true));
    }

    #[test]
    fn srto_probe_repairs_f_double_without_full_rto() {
        let mut s = Sender::new(SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 10,
            recovery: RecoveryMechanism::srto(),
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(1 << 20);
        // Establish an RTT estimate first.
        send_data(&mut s, ms(0), 1);
        let mut out = Vec::new();
        s.on_ack(ms(100), &ack(DEFAULT_MSS as u64, 1 << 20), &mut out);
        // Now a window with a loss.
        s.app_write(9 * DEFAULT_MSS as u64);
        out.clear();
        s.poll(ms(100), &mut out);
        let mss = DEFAULT_MSS as u64;
        let base = mss;
        for i in 1..=3u64 {
            s.on_ack(
                ms(200 + i),
                &sack_ack(base, 1 << 20, &[(base + mss, base + (1 + i) * mss)]),
                &mut out,
            );
        }
        assert_eq!(s.ca_state(), CaState::Recovery);
        // The fast retransmission of `base` is dropped. S-RTO probe must
        // fire ~2·SRTT later, well before the RTO, and retransmit it again.
        let d = s.next_deadline().unwrap();
        let rto = s.rtt().rto();
        assert!(
            d - ms(203) < rto,
            "probe deadline {d} must precede RTO-based deadline"
        );
        out.clear();
        s.on_tick(d, &mut out);
        assert_eq!(s.stats().srto_probes, 1);
        assert!(out
            .iter()
            .any(|op| matches!(op, SendOp::Data { seq, retrans: true, .. } if *seq == base)));
        let head = s.scoreboard().seg_at(base).unwrap();
        assert_eq!(head.retrans_count, 2);
        assert!(!head.ever_rto_retrans, "probe is not a native RTO");
    }

    #[test]
    fn srto_respects_t1_threshold() {
        let mut s = Sender::new(SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 20,
            recovery: RecoveryMechanism::Srto(crate::recovery::SrtoConfig {
                t1_packets: 5,
                ..Default::default()
            }),
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(1 << 20);
        send_data(&mut s, ms(0), 10);
        // 10 ≥ T1=5 outstanding: native RTO must be armed, not the probe.
        let d = s.next_deadline().unwrap();
        assert_eq!(
            d,
            ms(0) + s.rtt().rto() + SenderConfig::default().timer_granularity
        );
    }

    #[test]
    fn srto_halves_cwnd_only_above_t2() {
        let mut s = Sender::new(SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 4,
            recovery: RecoveryMechanism::srto(),
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(1 << 20);
        send_data(&mut s, ms(0), 1);
        let mut out = Vec::new();
        s.on_ack(ms(100), &ack(DEFAULT_MSS as u64, 1 << 20), &mut out);
        s.app_write(2 * DEFAULT_MSS as u64);
        s.poll(ms(100), &mut out);
        let d = s.next_deadline().unwrap();
        out.clear();
        s.on_tick(d, &mut out);
        // cwnd was 4+ (grew to 5 after the ack) ≤ T2=5 ⇒ no halving.
        assert_eq!(s.stats().srto_probes, 1);
        assert!(
            s.cwnd() >= 4,
            "cwnd {} must not be halved at/below T2",
            s.cwnd()
        );
        assert_eq!(s.ca_state(), CaState::Recovery);
    }

    #[test]
    fn srto_deactivates_after_native_rto_on_head() {
        let mut s = Sender::new(SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 10,
            recovery: RecoveryMechanism::srto(),
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(1 << 20);
        send_data(&mut s, ms(0), 2);
        // Probe fires, retransmits head, falls back to RTO.
        let d1 = s.next_deadline().unwrap();
        let mut out = Vec::new();
        s.on_tick(d1, &mut out);
        assert_eq!(s.stats().srto_probes, 1);
        // RTO fires: head now RTO-retransmitted.
        let d2 = s.next_deadline().unwrap();
        s.on_tick(d2, &mut out);
        assert_eq!(s.stats().rto_count, 1);
        // Next arming must be a native RTO (head.ever_rto_retrans).
        let d3 = s.next_deadline().unwrap();
        let gap = d3 - d2;
        assert!(
            gap >= s.rtt().rto(),
            "S-RTO must not re-arm after a native RTO, got {gap}"
        );
    }

    fn tracks_sender(cfg: crate::recovery::TracksConfig) -> Sender {
        let mut s = Sender::new(SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 10,
            recovery: RecoveryMechanism::Tracks(cfg),
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(1 << 20);
        s
    }

    #[test]
    fn tracks_forces_fast_retransmit_before_rto() {
        let mut s = tracks_sender(Default::default());
        // Establish an RTT estimate first.
        send_data(&mut s, ms(0), 1);
        let mut out = Vec::new();
        s.on_ack(ms(100), &ack(DEFAULT_MSS as u64, 1 << 20), &mut out);
        // A window with the head lost: only TWO dupacks ever arrive (tail
        // loss starves the dupack supply below dupthres = 3), so native
        // fast retransmit never triggers and the flow would wait out the
        // full RTO.
        s.app_write(5 * DEFAULT_MSS as u64);
        out.clear();
        s.poll(ms(100), &mut out);
        let mss = DEFAULT_MSS as u64;
        let base = mss;
        for i in 1..=2u64 {
            s.on_ack(
                ms(200 + i),
                &sack_ack(base, 1 << 20, &[(base + mss, base + (1 + i) * mss)]),
                &mut out,
            );
        }
        assert_eq!(s.ca_state(), CaState::Disorder);
        // The virtual timer must be armed well before the RTO.
        let d = s.next_deadline().unwrap();
        let rto_deadline = ms(202) + s.rtt().rto();
        assert!(d < rto_deadline, "T-RACKs timer {d} must precede the RTO");
        out.clear();
        s.on_tick(d, &mut out);
        assert_eq!(s.stats().tracks_forced, 1);
        assert_eq!(s.ca_state(), CaState::Recovery, "forced fast-retransmit");
        assert_eq!(s.stats().fast_recovery_count, 1);
        assert!(out
            .iter()
            .any(|op| matches!(op, SendOp::Data { seq, retrans: true, .. } if *seq == base)));
        let head = s.scoreboard().seg_at(base).unwrap();
        assert!(!head.ever_rto_retrans, "forced entry is not a native RTO");
    }

    #[test]
    fn tracks_does_not_arm_without_dupack_evidence() {
        let mut s = tracks_sender(Default::default());
        send_data(&mut s, ms(0), 5);
        // No ACKs at all: a quiet tail arms the native RTO, never the
        // virtual timer (unlike TLP/S-RTO, T-RACKs needs dup-ACK state).
        let d = s.next_deadline().unwrap();
        assert_eq!(
            d,
            ms(0) + s.rtt().rto() + SenderConfig::default().timer_granularity
        );
        let mut out = Vec::new();
        s.on_tick(d, &mut out);
        assert_eq!(s.stats().tracks_forced, 0);
        assert_eq!(s.stats().rto_count, 1);
    }

    #[test]
    fn tracks_arm_threshold_rearm_on_later_dupack() {
        let mut s = tracks_sender(crate::recovery::TracksConfig {
            dupack_arm: 2,
            ..Default::default()
        });
        send_data(&mut s, ms(0), 1);
        let mut out = Vec::new();
        s.on_ack(ms(100), &ack(DEFAULT_MSS as u64, 1 << 20), &mut out);
        s.app_write(6 * DEFAULT_MSS as u64);
        s.poll(ms(100), &mut out);
        let mss = DEFAULT_MSS as u64;
        let base = mss;
        // First dupack: below the arm threshold, native RTO stays armed.
        s.on_ack(
            ms(201),
            &sack_ack(base, 1 << 20, &[(base + mss, base + 2 * mss)]),
            &mut out,
        );
        let rto = s.rtt().rto();
        assert!(s.next_deadline().unwrap() >= ms(201) + rto);
        // Second dupack crosses the threshold: the pending RTO must be
        // replaced by the short virtual timer even though the congestion
        // state did not change (Disorder → Disorder).
        s.on_ack(
            ms(202),
            &sack_ack(base, 1 << 20, &[(base + mss, base + 3 * mss)]),
            &mut out,
        );
        let d = s.next_deadline().unwrap();
        assert!(d < ms(202) + rto, "virtual timer {d} must precede the RTO");
        out.clear();
        s.on_tick(d, &mut out);
        assert_eq!(s.stats().tracks_forced, 1);
    }

    #[test]
    fn tracks_falls_back_to_native_rto_after_forcing() {
        let mut s = tracks_sender(Default::default());
        send_data(&mut s, ms(0), 1);
        let mut out = Vec::new();
        s.on_ack(ms(100), &ack(DEFAULT_MSS as u64, 1 << 20), &mut out);
        s.app_write(5 * DEFAULT_MSS as u64);
        s.poll(ms(100), &mut out);
        let mss = DEFAULT_MSS as u64;
        let base = mss;
        for i in 1..=2u64 {
            s.on_ack(
                ms(200 + i),
                &sack_ack(base, 1 << 20, &[(base + mss, base + (1 + i) * mss)]),
                &mut out,
            );
        }
        let d = s.next_deadline().unwrap();
        out.clear();
        s.on_tick(d, &mut out);
        assert_eq!(s.stats().tracks_forced, 1);
        // The forced retransmission is lost too: in Recovery the virtual
        // timer must NOT re-arm; only the native RTO repairs it.
        let d2 = s.next_deadline().unwrap();
        out.clear();
        s.on_tick(d2, &mut out);
        assert_eq!(s.stats().tracks_forced, 1, "no re-fire in Recovery");
        assert_eq!(s.stats().rto_count, 1);
        assert!(out.iter().any(|op| matches!(
            op,
            SendOp::Data {
                seq,
                retrans: true,
                ..
            } if *seq == base
        )));
    }

    #[test]
    fn tlp_probes_tail_loss_in_open_state() {
        let mut s = Sender::new(SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 10,
            recovery: RecoveryMechanism::tlp(),
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(1 << 20);
        send_data(&mut s, ms(0), 1);
        let mut out = Vec::new();
        s.on_ack(ms(100), &ack(DEFAULT_MSS as u64, 1 << 20), &mut out);
        // Send the tail segment; its loss leaves us in Open with no dupacks.
        s.app_write(DEFAULT_MSS as u64);
        out.clear();
        s.poll(ms(100), &mut out);
        let d = s.next_deadline().unwrap();
        let rto_deadline = ms(100) + s.rtt().rto();
        // With one packet out the PTO includes the delayed-ACK allowance and
        // is capped at the RTO; it must never be later.
        assert!(
            d <= rto_deadline,
            "PTO {d} must not exceed RTO {rto_deadline}"
        );
        out.clear();
        s.on_tick(d, &mut out);
        assert_eq!(s.stats().tlp_probes, 1);
        // No new data ⇒ the probe retransmits the last segment.
        assert!(out
            .iter()
            .any(|op| matches!(op, SendOp::Data { retrans: true, .. })));
        // Only one probe per episode: next deadline is the RTO.
        assert!(s.next_deadline().unwrap() >= d);
    }

    #[test]
    fn tlp_does_not_probe_in_recovery() {
        let mut s = Sender::new(SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 10,
            recovery: RecoveryMechanism::tlp(),
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(1 << 20);
        send_data(&mut s, ms(0), 10);
        let mss = DEFAULT_MSS as u64;
        let mut out = Vec::new();
        for i in 1..=3u64 {
            s.on_ack(
                ms(100 + i),
                &sack_ack(0, 1 << 20, &[(mss, (1 + i) * mss)]),
                &mut out,
            );
        }
        assert_eq!(s.ca_state(), CaState::Recovery);
        // In Recovery the full RTO is armed — TLP cannot help f-double.
        let d = s.next_deadline().unwrap();
        assert!(d >= ms(103) + s.rtt().rto() - SimDuration::from_millis(1));
        out.clear();
        s.on_tick(d, &mut out);
        assert_eq!(s.stats().tlp_probes, 0);
        assert_eq!(s.stats().rto_count, 1);
    }

    #[test]
    fn dsack_undo_restores_window_after_spurious_rto() {
        let mut s = reno_sender();
        send_data(&mut s, ms(0), 4);
        let mss = DEFAULT_MSS as u64;
        let mut out = Vec::new();
        // Establish srtt.
        s.on_ack(ms(100), &ack(mss, 1 << 20), &mut out);
        let cwnd_before = s.cwnd();
        // Spurious RTO (ACKs were just delayed).
        let d = s.next_deadline().unwrap();
        out.clear();
        s.on_tick(d, &mut out);
        assert_eq!(s.ca_state(), CaState::Loss);
        // The delayed cumulative ACK arrives with a DSACK for the
        // retransmitted head.
        let mut seg = ack(4 * mss, 1 << 20);
        seg.sack = [SackBlock::new(mss, 2 * mss)].into();
        seg.dsack = true;
        s.on_ack(d + SimDuration::from_millis(10), &seg, &mut out);
        assert_eq!(s.stats().undo_count, 1);
        assert!(
            s.cwnd() >= cwnd_before,
            "cwnd {} restored to ≥ {cwnd_before}",
            s.cwnd()
        );
        assert_eq!(s.ca_state(), CaState::Open);
    }

    #[test]
    fn zero_window_arms_persist_timer_and_probes() {
        let mut s = reno_sender();
        // Peer advertises zero window before anything is sent.
        s.set_peer_rwnd(0);
        s.app_write(5000);
        let mut out = Vec::new();
        s.poll(ms(0), &mut out);
        assert!(out.is_empty(), "no data into a zero window");
        let d = s.next_deadline().expect("persist timer armed");
        s.on_tick(d, &mut out);
        assert_eq!(out, vec![SendOp::WindowProbe]);
        assert_eq!(s.stats().window_probes, 1);
        // Window opens: transmission resumes.
        out.clear();
        s.on_ack(d + SimDuration::from_millis(1), &ack(0, 1 << 20), &mut out);
        assert!(!out.is_empty());
    }

    #[test]
    fn fin_rides_on_final_data_segment() {
        let mut s = reno_sender();
        s.app_write(2000);
        s.app_close();
        let mut out = Vec::new();
        s.poll(ms(0), &mut out);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], SendOp::Data { fin: false, .. }));
        assert!(matches!(out[1], SendOp::Data { fin: true, .. }));
    }

    #[test]
    fn dsack_alone_does_not_inflate_dupthres() {
        let mut s = reno_sender();
        send_data(&mut s, ms(0), 6);
        let mss = DEFAULT_MSS as u64;
        let mut out = Vec::new();
        let before = s.dupthres();
        let mut seg = ack(mss, 1 << 20);
        seg.sack = [SackBlock::new(0, mss)].into();
        seg.dsack = true;
        s.on_ack(ms(100), &seg, &mut out);
        assert_eq!(
            s.dupthres(),
            before,
            "DSACK is undo evidence, not reordering evidence"
        );
    }

    #[test]
    fn early_retransmit_lowers_threshold_for_tiny_windows() {
        let mut s = Sender::new(SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 10,
            early_retransmit: true,
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(1 << 20);
        send_data(&mut s, ms(0), 2);
        let mss = DEFAULT_MSS as u64;
        let mut out = Vec::new();
        // A single dupack (SACK of seg 1) with only 2 outstanding triggers
        // early retransmit (threshold = packets_out − 1 = 1).
        s.on_ack(ms(100), &sack_ack(0, 1 << 20, &[(mss, 2 * mss)]), &mut out);
        assert_eq!(s.ca_state(), CaState::Recovery);
        assert!(out.iter().any(|op| matches!(
            op,
            SendOp::Data {
                seq: 0,
                retrans: true,
                ..
            }
        )));
    }

    #[test]
    fn pacing_spreads_a_window_across_the_rtt() {
        let mut s = Sender::new(SenderConfig {
            cc: CcKind::Reno,
            init_cwnd: 10,
            pacing: true,
            ..SenderConfig::default()
        });
        s.set_peer_rwnd(1 << 20);
        s.seed_rtt(SimDuration::from_millis(100));
        s.app_write(10 * DEFAULT_MSS as u64);
        let mut out = Vec::new();
        s.poll(ms(0), &mut out);
        // Only the burst credit (~2 packets) goes out immediately; the rest
        // wait on the pace clock (interval = 100ms / 10 = 10ms).
        assert!(out.len() <= 2, "paced burst too large: {}", out.len());
        let d = s.next_deadline().expect("pace timer armed");
        assert!(d <= ms(20), "first pace release at {d}");
        // Walking the pace clock releases everything, spread over ~100ms.
        let mut released = out.len();
        let mut now = ms(0);
        for _ in 0..200 {
            let Some(d) = s.next_deadline() else { break };
            now = d;
            let mut more = Vec::new();
            s.on_tick(now, &mut more);
            released += more.len();
            if released == 10 {
                break;
            }
        }
        assert_eq!(released, 10, "all packets eventually released");
        assert!(
            now >= ms(70) && now <= ms(130),
            "window spread over ~1 RTT, ended {now}"
        );
    }

    #[test]
    fn pacing_off_sends_full_burst() {
        let mut s = reno_sender();
        s.app_write(10 * DEFAULT_MSS as u64);
        let mut out = Vec::new();
        s.poll(ms(0), &mut out);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn all_acked_reflects_stream_state() {
        let mut s = reno_sender();
        assert!(s.all_acked());
        s.app_write(1000);
        assert!(!s.all_acked());
        let mut out = Vec::new();
        s.poll(ms(0), &mut out);
        s.on_ack(ms(50), &ack(1000, 1 << 20), &mut out);
        assert!(s.all_acked());
    }
}

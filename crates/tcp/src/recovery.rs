//! Loss-recovery mechanism selection: native Linux 2.6.32 behaviour, the
//! Tail Loss Probe baseline, the paper's S-RTO, or T-RACKs.
//!
//! All four share the same fast-retransmit/RTO machinery in
//! [`crate::sender::Sender`]; the mechanism only changes *what timer is
//! armed while data is outstanding* and *what happens when that timer
//! fires*:
//!
//! * **Native** — the RFC 6298 retransmission timer only. A lost
//!   retransmission or a tail loss waits out the full RTO (hundreds of ms to
//!   seconds; Fig. 1).
//! * **TLP** (Flach et al., SIGCOMM'13) — in the `Open` state, a probe timer
//!   `PTO = max(2·SRTT, 10ms)` (plus a delayed-ACK allowance when only one
//!   packet is outstanding) transmits one probe (new data if available, else
//!   the highest outstanding segment). Because TLP requires the Open state,
//!   it cannot mitigate double-retransmission stalls (§4.1 of the paper).
//! * **S-RTO** (this paper, Algorithm 1) — whenever the retransmission timer
//!   would be armed and (a) the head segment has never been RTO-retransmitted
//!   and (b) `packets_out < T1`, arm a probe at `2·RTT` instead. On firing:
//!   retransmit the first unacknowledged segment, halve cwnd only if
//!   `cwnd > T2` and not already in Recovery, enter Recovery, and fall back
//!   to the native RTO. Active in *any* congestion state, which is what lets
//!   it repair f-double stalls.
//! * **T-RACKs** (Ahmed et al., "T-RACKs: A Faster Recovery Mechanism for
//!   TCP in Data Center Networks") — an ACK-state-driven virtual RACK-style
//!   timer. Whenever the flow sits in `Open`/`Disorder` holding dup-ACK
//!   evidence below `dupthres` (a tail loss that will never accumulate
//!   three dupacks), a short timer `max(mult·SRTT, min_timeout)` is armed;
//!   on expiry the sender *forces fast-retransmit entry* — the same
//!   Recovery transition three dupacks would have triggered — instead of
//!   waiting out the RTO. Unlike TLP it keeps working in `Disorder`, and
//!   unlike S-RTO it only ever fires on positive dup-ACK evidence, so it
//!   is never spuriously early on a quiet tail.

use simnet::time::SimDuration;

/// Tail Loss Probe parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TlpConfig {
    /// Lower bound on the probe timeout (10ms in the TLP draft).
    pub min_pto: SimDuration,
    /// Worst-case delayed-ACK allowance added when exactly one packet is
    /// outstanding (200ms, matching the Linux implementation).
    pub delack_allowance: SimDuration,
}

impl Default for TlpConfig {
    fn default() -> Self {
        TlpConfig {
            min_pto: SimDuration::from_millis(10),
            delack_allowance: SimDuration::from_millis(200),
        }
    }
}

/// S-RTO parameters (Algorithm 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrtoConfig {
    /// `T1`: the probe timer is armed only while `packets_out < T1`.
    /// The paper deploys 5 for web search and 10 for cloud storage.
    pub t1_packets: u32,
    /// `T2`: cwnd is halved on probe firing only if `cwnd > T2` (5 in the
    /// paper's deployment).
    pub t2_cwnd: u32,
    /// Probe delay as a multiple of the smoothed RTT (2.0 in the paper,
    /// the same `2·RTT` threshold used to define a stall).
    pub probe_rtt_mult: f64,
}

impl Default for SrtoConfig {
    fn default() -> Self {
        SrtoConfig {
            t1_packets: 10,
            t2_cwnd: 5,
            probe_rtt_mult: 2.0,
        }
    }
}

impl SrtoConfig {
    /// The deployment parameters the paper used for the web search service.
    pub fn web_search() -> Self {
        SrtoConfig {
            t1_packets: 5,
            ..Self::default()
        }
    }

    /// The deployment parameters the paper used for the cloud storage
    /// service.
    pub fn cloud_storage() -> Self {
        SrtoConfig {
            t1_packets: 10,
            ..Self::default()
        }
    }
}

/// T-RACKs parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracksConfig {
    /// Virtual timer delay as a multiple of the smoothed RTT. The T-RACKs
    /// paper arms its recovery epoch at roughly one RTT past the most
    /// recent dup-ACK; 1.5 leaves slack for delayed ACKs without
    /// approaching the RTO.
    pub timer_rtt_mult: f64,
    /// Lower bound on the virtual timer (guards against a tiny SRTT arming
    /// a sub-millisecond timer that fires before the ACK clock can run).
    pub min_timeout: SimDuration,
    /// Dup-ACK evidence required to arm the timer — the threshold
    /// *bypass*: entry into fast retransmit no longer waits for `dupthres`
    /// duplicates, only for this (lower) count plus the timer. 1 (the
    /// default) arms on the very first duplicate.
    pub dupack_arm: u32,
    /// The timer only arms while `packets_out ≤` this bound. A flow with a
    /// large outstanding window generates `dupthres` duplicates on its own
    /// within one RTT, so forcing entry early only adds spurious
    /// recoveries; the dupack-starved tails T-RACKs exists for (its
    /// datacenter incast setting) all sit at small `packets_out`.
    pub max_packets_out: u32,
}

impl Default for TracksConfig {
    fn default() -> Self {
        TracksConfig {
            timer_rtt_mult: 1.5,
            min_timeout: SimDuration::from_millis(10),
            dupack_arm: 1,
            max_packets_out: 8,
        }
    }
}

/// Which recovery mechanism the sender runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RecoveryMechanism {
    /// Native Linux 2.6.32: RTO only.
    #[default]
    Native,
    /// Tail Loss Probe.
    Tlp(TlpConfig),
    /// The paper's S-RTO.
    Srto(SrtoConfig),
    /// T-RACKs: dup-ACK-armed virtual timer forcing fast-retransmit entry.
    Tracks(TracksConfig),
}

impl RecoveryMechanism {
    /// TLP with default parameters.
    pub fn tlp() -> Self {
        RecoveryMechanism::Tlp(TlpConfig::default())
    }

    /// S-RTO with default parameters.
    pub fn srto() -> Self {
        RecoveryMechanism::Srto(SrtoConfig::default())
    }

    /// T-RACKs with default parameters.
    pub fn tracks() -> Self {
        RecoveryMechanism::Tracks(TracksConfig::default())
    }

    /// Short human-readable label for reports
    /// ("Linux", "TLP", "S-RTO", "T-RACKs").
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryMechanism::Native => "Linux",
            RecoveryMechanism::Tlp(_) => "TLP",
            RecoveryMechanism::Srto(_) => "S-RTO",
            RecoveryMechanism::Tracks(_) => "T-RACKs",
        }
    }

    /// Every mechanism with its default parameters, in report order.
    pub fn all_default() -> [RecoveryMechanism; 4] {
        [
            RecoveryMechanism::Native,
            RecoveryMechanism::tlp(),
            RecoveryMechanism::srto(),
            RecoveryMechanism::tracks(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(RecoveryMechanism::Native.label(), "Linux");
        assert_eq!(RecoveryMechanism::tlp().label(), "TLP");
        assert_eq!(RecoveryMechanism::srto().label(), "S-RTO");
        assert_eq!(RecoveryMechanism::tracks().label(), "T-RACKs");
        let labels: Vec<_> = RecoveryMechanism::all_default()
            .iter()
            .map(|m| m.label())
            .collect();
        assert_eq!(labels, ["Linux", "TLP", "S-RTO", "T-RACKs"]);
    }

    #[test]
    fn tracks_defaults_bypass_the_dupack_threshold() {
        let c = TracksConfig::default();
        assert!(
            c.dupack_arm < 3,
            "arming below dupthres is the whole point of the bypass"
        );
        assert!(c.timer_rtt_mult > 1.0);
        assert!(c.min_timeout >= SimDuration::from_millis(1));
    }

    #[test]
    fn paper_deployment_parameters() {
        assert_eq!(SrtoConfig::web_search().t1_packets, 5);
        assert_eq!(SrtoConfig::cloud_storage().t1_packets, 10);
        assert_eq!(SrtoConfig::default().t2_cwnd, 5);
        assert_eq!(SrtoConfig::default().probe_rtt_mult, 2.0);
    }
}

//! A full-duplex TCP endpoint: one [`Sender`] for the outgoing byte stream
//! and one [`Receiver`] for the incoming stream, with ACK piggybacking.
//!
//! Incoming segments are split: the data portion feeds the receiver, the
//! acknowledgment fields feed the sender. Outgoing data always carries the
//! receiver's current cumulative ACK / window / SACK state, clearing any
//! pending delayed ACK — exactly the piggybacking a real stack performs.

use simnet::time::SimTime;

use crate::receiver::{Receiver, ReceiverConfig};
use crate::seg::{SegFlags, Segment};
use crate::sender::{SendOp, Sender, SenderConfig};

/// One endpoint of a TCP connection.
#[derive(Debug, Clone)]
pub struct Host {
    /// Sender for the outgoing byte stream.
    pub tx: Sender,
    /// Receiver for the incoming byte stream.
    pub rx: Receiver,
    /// Scratch buffer for sender operations, reused across events so the
    /// per-segment hot path never allocates.
    ops: Vec<SendOp>,
}

impl Host {
    /// Build an endpoint from sender and receiver configurations.
    pub fn new(tx_cfg: SenderConfig, rx_cfg: ReceiverConfig) -> Self {
        Host {
            tx: Sender::new(tx_cfg),
            rx: Receiver::new(rx_cfg),
            ops: Vec::new(),
        }
    }

    /// Process an incoming (non-SYN) segment, emitting any segments the
    /// endpoint sends in response (data, retransmissions, pure ACKs).
    pub fn on_segment(&mut self, now: SimTime, seg: &Segment, out: &mut Vec<Segment>) {
        let mut ack_needed = false;
        if seg.has_data() || seg.flags.fin {
            ack_needed = self.rx.on_data(now, seg);
        }
        if seg.probe {
            // Window probes demand an immediate window report.
            ack_needed = true;
        }
        let mut ops = std::mem::take(&mut self.ops);
        if seg.flags.ack {
            self.tx.on_ack(now, seg, &mut ops);
        }
        self.emit(now, &mut ops, ack_needed, out);
        self.ops = ops;
    }

    /// Fire any expired timers (retransmission, probe, persist, delack).
    pub fn on_tick(&mut self, now: SimTime, out: &mut Vec<Segment>) {
        let mut ops = std::mem::take(&mut self.ops);
        self.tx.on_tick(now, &mut ops);
        self.rx.on_tick(now);
        self.emit(now, &mut ops, false, out);
        self.ops = ops;
    }

    /// Transmit whatever the windows currently allow (call after
    /// `tx.app_write`) and flush any pending ACK.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<Segment>) {
        let mut ops = std::mem::take(&mut self.ops);
        self.tx.poll(now, &mut ops);
        self.emit(now, &mut ops, false, out);
        self.ops = ops;
    }

    /// The earliest pending timer deadline across sender and receiver.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match (self.tx.next_deadline(), self.rx.next_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Let the application read from the receive buffer; flushes a window
    /// update if one becomes due.
    pub fn app_read(&mut self, now: SimTime, bytes: u64, out: &mut Vec<Segment>) {
        self.rx.app_read(bytes);
        let mut ops = std::mem::take(&mut self.ops);
        self.emit(now, &mut ops, false, out);
        self.ops = ops;
    }

    fn emit(
        &mut self,
        _now: SimTime,
        ops: &mut Vec<SendOp>,
        ack_needed: bool,
        out: &mut Vec<Segment>,
    ) {
        let mut carried_ack = false;
        for op in ops.drain(..) {
            match op {
                SendOp::Data {
                    seq,
                    len,
                    fin,
                    retrans: _,
                } => {
                    let f = self.rx.take_ack_fields();
                    out.push(Segment {
                        seq,
                        len,
                        flags: SegFlags {
                            syn: false,
                            fin,
                            rst: false,
                            ack: true,
                        },
                        ack: f.ack,
                        rwnd: f.rwnd,
                        sack: f.sack,
                        dsack: f.dsack,
                        probe: false,
                    });
                    carried_ack = true;
                }
                SendOp::WindowProbe => {
                    let f = self.rx.take_ack_fields();
                    out.push(Segment {
                        seq: 0,
                        len: 0,
                        flags: SegFlags::ACK,
                        ack: f.ack,
                        rwnd: f.rwnd,
                        sack: f.sack,
                        dsack: f.dsack,
                        probe: true,
                    });
                    carried_ack = true;
                }
            }
        }
        if (ack_needed || self.rx.wants_ack_now()) && !carried_ack {
            let f = self.rx.take_ack_fields();
            let mut seg = Segment::pure_ack(f.ack, f.rwnd);
            seg.sack = f.sack;
            seg.dsack = f.dsack;
            out.push(seg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::DEFAULT_MSS;
    use simnet::time::SimDuration;

    fn pair() -> (Host, Host) {
        let mut server = Host::new(SenderConfig::default(), ReceiverConfig::default());
        let mut client = Host::new(SenderConfig::default(), ReceiverConfig::default());
        server.tx.set_peer_rwnd(client.rx.rwnd());
        client.tx.set_peer_rwnd(server.rx.rwnd());
        (server, client)
    }

    /// Run segments back and forth until both sides go quiet, with a fixed
    /// one-way delay, firing timers when nothing is in flight.
    fn converse(server: &mut Host, client: &mut Host, start: SimTime) -> SimTime {
        let mut now = start;
        let delay = SimDuration::from_millis(10);
        let mut to_client: Vec<Segment> = Vec::new();
        let mut to_server: Vec<Segment> = Vec::new();
        server.poll(now, &mut to_client);
        for _ in 0..10_000 {
            if to_client.is_empty() && to_server.is_empty() {
                let d = match (server.next_deadline(), client.next_deadline()) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => break,
                };
                now = d;
                server.on_tick(now, &mut to_client);
                client.on_tick(now, &mut to_server);
                continue;
            }
            now += delay;
            for seg in std::mem::take(&mut to_client) {
                client.on_segment(now, &seg, &mut to_server);
                let buffered = client.rx.buffered();
                client.app_read(now, buffered, &mut to_server);
            }
            for seg in std::mem::take(&mut to_server) {
                server.on_segment(now, &seg, &mut to_client);
            }
            if server.tx.all_acked() && to_client.is_empty() && to_server.is_empty() {
                break;
            }
        }
        now
    }

    #[test]
    fn lossless_transfer_completes_and_acks_piggyback() {
        let (mut server, mut client) = pair();
        server.tx.app_write(20 * DEFAULT_MSS as u64);
        server.tx.app_close();
        converse(&mut server, &mut client, SimTime::ZERO);
        assert!(server.tx.all_acked());
        assert_eq!(client.rx.stats().bytes_delivered, 20 * DEFAULT_MSS as u64);
        assert!(client.rx.fin_received());
        assert_eq!(server.tx.stats().retrans_segs, 0);
        assert_eq!(server.tx.stats().rto_count, 0);
    }

    #[test]
    fn request_response_piggybacks_acks_on_data() {
        let (mut server, mut client) = pair();
        // Client sends a request.
        client.tx.app_write(300);
        let mut to_server = Vec::new();
        client.poll(SimTime::ZERO, &mut to_server);
        assert_eq!(to_server.len(), 1);
        // Server receives it and responds: the response data must carry the
        // ACK of the request (no separate pure ACK needed).
        let t = SimTime::from_millis(10);
        let mut to_client = Vec::new();
        server.on_segment(t, &to_server[0], &mut to_client);
        server.tx.app_write(1000);
        server.poll(t, &mut to_client);
        let data: Vec<&Segment> = to_client.iter().filter(|s| s.has_data()).collect();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].ack, 300, "response piggybacks the request ACK");
    }

    #[test]
    fn window_probe_elicits_immediate_window_report() {
        let (_server, mut client) = pair();
        let mut out = Vec::new();
        let probe = Segment {
            probe: true,
            ..Segment::pure_ack(0, 1 << 20)
        };
        client.on_segment(SimTime::ZERO, &probe, &mut out);
        assert_eq!(out.len(), 1);
        assert!(!out[0].has_data());
        assert_eq!(out[0].rwnd, client.rx.rwnd());
    }

    #[test]
    fn transfer_with_scripted_loss_recovers() {
        // Drop the 3rd data segment once at the "link" (we emulate by
        // skipping delivery); fast retransmit must repair it.
        let (mut server, mut client) = pair();
        server.tx.app_write(10 * DEFAULT_MSS as u64);
        server.tx.app_close();
        let mut now = SimTime::ZERO;
        let delay = SimDuration::from_millis(10);
        let mut to_client: Vec<Segment> = Vec::new();
        let mut to_server: Vec<Segment> = Vec::new();
        server.poll(now, &mut to_client);
        let mut dropped = false;
        for _ in 0..10_000 {
            if to_client.is_empty() && to_server.is_empty() {
                let d = match (server.next_deadline(), client.next_deadline()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                let Some(d) = d else { break };
                now = d;
                server.on_tick(now, &mut to_client);
                client.on_tick(now, &mut to_server);
                continue;
            }
            now += delay;
            for seg in std::mem::take(&mut to_client) {
                if !dropped && seg.seq == 2 * DEFAULT_MSS as u64 && seg.has_data() {
                    dropped = true;
                    continue;
                }
                client.on_segment(now, &seg, &mut to_server);
                let buffered = client.rx.buffered();
                client.app_read(now, buffered, &mut to_server);
            }
            for seg in std::mem::take(&mut to_server) {
                server.on_segment(now, &seg, &mut to_client);
            }
            if server.tx.all_acked() {
                break;
            }
        }
        assert!(dropped);
        assert!(
            server.tx.all_acked(),
            "transfer must complete despite the loss"
        );
        assert!(server.tx.stats().retrans_segs >= 1);
        assert_eq!(client.rx.stats().bytes_delivered, 10 * DEFAULT_MSS as u64);
    }
}

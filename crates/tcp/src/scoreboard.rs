//! The sender's retransmission scoreboard.
//!
//! Tracks every transmitted-but-unacknowledged segment together with the
//! per-segment marks Linux keeps in `TCP_SKB_CB` (`SACKED_ACKED`, `LOST`,
//! `SACKED_RETRANS`) and maintains the aggregate counters of the paper's
//! Table 2 incrementally: `packets_out`, `sacked_out`, `lost_out`,
//! `retrans_out`, from which
//!
//! ```text
//! in_flight = packets_out + retrans_out − (sacked_out + lost_out)   (Eq. 1)
//! ```
//!
//! One behaviour is load-bearing for the paper's *f-double stall* finding
//! and is preserved faithfully: a segment that has already been
//! retransmitted (`retrans_out` set) is **never re-marked lost by SACK
//! processing** — only an RTO clears the mark and allows another
//! retransmission. This is exactly why a dropped retransmission stalls the
//! flow until the timeout in the paper's kernel (Fig. 9), and why S-RTO's
//! probe timer helps.

use simnet::time::SimTime;

/// Per-segment transmission state (one entry per transmitted MSS chunk).
#[derive(Debug, Clone)]
pub struct TxSeg {
    /// Stream offset of the first byte.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// Peer reported this segment received via SACK.
    pub sacked: bool,
    /// Marked lost by the sender's loss estimation.
    pub lost: bool,
    /// Currently retransmitted and not yet (s)acked (`SACKED_RETRANS`).
    pub retrans_out: bool,
    /// Total number of retransmissions so far.
    pub retrans_count: u32,
    /// Whether any retransmission of this segment was RTO-driven.
    pub ever_rto_retrans: bool,
    /// How the *first* retransmission happened; `None` if never
    /// retransmitted. Used as ground truth for f-double vs t-double stalls.
    pub first_retrans_fast: Option<bool>,
    /// Time of the original transmission.
    pub first_tx: SimTime,
    /// Time of the most recent (re)transmission.
    pub last_tx: SimTime,
}

impl TxSeg {
    /// Stream offset one past the last byte.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.len as u64
    }
}

/// Result of cumulative-ACK processing.
#[derive(Debug, Default, Clone, Copy)]
pub struct AckResult {
    /// Number of segments fully acknowledged by this ACK.
    pub newly_acked: u32,
    /// RTT sample from the highest acked never-retransmitted segment
    /// (Karn's rule), if any.
    pub rtt_sample: Option<simnet::time::SimDuration>,
    /// Whether any acked segment had been retransmitted.
    pub acked_retrans: bool,
    /// Whether any acked segment carried a `lost` mark (it "returned from
    /// the dead" — evidence of reordering / spurious marking).
    pub acked_lost: bool,
}

/// Result of SACK-block processing.
#[derive(Debug, Default, Clone, Copy)]
pub struct SackResult {
    /// Segments newly marked SACKed.
    pub newly_sacked: u32,
    /// Whether any newly SACKed segment had been marked lost (reordering
    /// evidence: it arrived after all).
    pub sacked_was_lost: bool,
}

/// The scoreboard proper.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    segs: std::collections::VecDeque<TxSeg>,
    snd_una: u64,
    snd_nxt: u64,
    sacked_out: u32,
    lost_out: u32,
    retrans_out: u32,
    /// Highest stream offset covered by any SACK so far.
    high_sacked: u64,
    /// Segments with `lost && !retrans_out` — i.e. eligible for
    /// [`Scoreboard::next_lost_seq`]. Kept so the post-ACK transmit poll
    /// (which runs on *every* ACK) answers "nothing to retransmit" in
    /// `O(1)` instead of scanning the whole window.
    lost_pending: u32,
}

impl Scoreboard {
    /// A scoreboard for a stream starting at offset 0.
    pub fn new() -> Self {
        Scoreboard {
            segs: Default::default(),
            snd_una: 0,
            snd_nxt: 0,
            sacked_out: 0,
            lost_out: 0,
            retrans_out: 0,
            high_sacked: 0,
            lost_pending: 0,
        }
    }

    /// Index of the first outstanding segment with `seq >= target`, by
    /// binary search — `segs` is contiguous and sorted by `seq`.
    fn seek(&self, target: u64) -> usize {
        self.segs.partition_point(|s| s.seq < target)
    }

    /// First unacknowledged byte.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Next byte to be sent for the first time.
    pub fn snd_nxt(&self) -> u64 {
        self.snd_nxt
    }

    /// Outstanding original transmissions, in packets (`packets_out`).
    pub fn packets_out(&self) -> u32 {
        self.segs.len() as u32
    }

    /// Segments SACKed by the peer (`sacked_out`).
    pub fn sacked_out(&self) -> u32 {
        self.sacked_out
    }

    /// Segments the sender believes lost (`lost_out`).
    pub fn lost_out(&self) -> u32 {
        self.lost_out
    }

    /// Outstanding retransmissions (`retrans_out`).
    pub fn retrans_out(&self) -> u32 {
        self.retrans_out
    }

    /// Equation 1 of the paper.
    pub fn in_flight(&self) -> u32 {
        (self.packets_out() + self.retrans_out).saturating_sub(self.sacked_out + self.lost_out)
    }

    /// Number of unacked "holes" between the cumulative ACK and the highest
    /// SACK (the paper's `holes` parameter).
    pub fn holes(&self) -> u32 {
        self.segs
            .iter()
            .filter(|s| !s.sacked && s.seq_end() <= self.high_sacked)
            .count() as u32
    }

    /// Highest SACKed offset seen.
    pub fn high_sacked(&self) -> u64 {
        self.high_sacked
    }

    /// True when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// The head (oldest outstanding) segment.
    pub fn head(&self) -> Option<&TxSeg> {
        self.segs.front()
    }

    /// Iterate over outstanding segments in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = &TxSeg> {
        self.segs.iter()
    }

    /// Record the original transmission of a new segment of `len` bytes.
    /// Returns its starting offset.
    pub fn transmit_new(&mut self, now: SimTime, len: u32) -> u64 {
        debug_assert!(len > 0);
        let seq = self.snd_nxt;
        self.segs.push_back(TxSeg {
            seq,
            len,
            sacked: false,
            lost: false,
            retrans_out: false,
            retrans_count: 0,
            ever_rto_retrans: false,
            first_retrans_fast: None,
            first_tx: now,
            last_tx: now,
        });
        self.snd_nxt += len as u64;
        self.check_invariants();
        seq
    }

    /// Process a cumulative acknowledgment up to `ack`.
    pub fn ack_to(&mut self, now: SimTime, ack: u64) -> AckResult {
        let mut res = AckResult::default();
        if ack <= self.snd_una {
            return res;
        }
        while let Some(head) = self.segs.front() {
            if head.seq_end() > ack {
                break;
            }
            let seg = self.segs.pop_front().expect("non-empty");
            res.newly_acked += 1;
            if seg.sacked {
                self.sacked_out -= 1;
            }
            if seg.lost {
                self.lost_out -= 1;
                if !seg.retrans_out {
                    self.lost_pending -= 1;
                }
                if !seg.sacked && seg.retrans_count == 0 {
                    res.acked_lost = true;
                }
            }
            if seg.retrans_out {
                self.retrans_out -= 1;
            }
            if seg.retrans_count > 0 {
                res.acked_retrans = true;
            } else {
                res.rtt_sample = Some(now.saturating_since(seg.first_tx));
            }
        }
        self.snd_una = ack.max(self.snd_una);
        debug_assert!(
            self.segs.front().is_none_or(|s| s.seq >= self.snd_una),
            "ACK {ack} not on a segment boundary"
        );
        self.check_invariants();
        res
    }

    /// Apply the SACK blocks of an incoming ACK (peer-stream offsets).
    pub fn apply_sack(&mut self, blocks: &[tcp_trace::record::SackBlock]) -> SackResult {
        let mut res = SackResult::default();
        for b in blocks {
            self.high_sacked = self.high_sacked.max(b.end);
            let from = self.seek(b.start);
            for seg in self.segs.range_mut(from..) {
                if seg.seq_end() > b.end {
                    break;
                }
                if seg.sacked {
                    continue;
                }
                if seg.lost && !seg.retrans_out {
                    self.lost_pending -= 1;
                }
                seg.sacked = true;
                self.sacked_out += 1;
                res.newly_sacked += 1;
                if seg.lost {
                    seg.lost = false;
                    self.lost_out -= 1;
                    if seg.retrans_count == 0 {
                        res.sacked_was_lost = true;
                    }
                }
                if seg.retrans_out {
                    seg.retrans_out = false;
                    self.retrans_out -= 1;
                }
            }
        }
        self.check_invariants();
        res
    }

    /// Mark the head segment lost (fast-retransmit entry). Does nothing if
    /// the head is already lost, SACKed, or — matching the paper's kernel —
    /// already retransmitted.
    pub fn mark_lost_head(&mut self) -> bool {
        for seg in self.segs.iter_mut() {
            if seg.sacked {
                continue;
            }
            if seg.lost || seg.retrans_out {
                return false;
            }
            seg.lost = true;
            self.lost_out += 1;
            self.lost_pending += 1;
            self.check_invariants();
            return true;
        }
        false
    }

    /// FACK-style loss marking: any unsacked, unlost, un-retransmitted
    /// segment with at least `dupthres` MSS of SACKed data above it is lost.
    /// Returns the number newly marked.
    pub fn mark_lost_fack(&mut self, dupthres: u32, mss: u32) -> u32 {
        let threshold = (dupthres.saturating_sub(1)) as u64 * mss as u64;
        let mut marked = 0;
        let high = self.high_sacked;
        for seg in self.segs.iter_mut() {
            if seg.seq_end() + threshold > high {
                break;
            }
            if seg.sacked || seg.lost || seg.retrans_out {
                continue;
            }
            seg.lost = true;
            self.lost_out += 1;
            self.lost_pending += 1;
            marked += 1;
        }
        self.check_invariants();
        marked
    }

    /// RTO entry (`tcp_enter_loss`): mark every outstanding non-SACKed
    /// segment lost and clear all retransmission marks so the queue can be
    /// retransmitted from the head.
    pub fn mark_all_lost(&mut self) {
        for seg in self.segs.iter_mut() {
            if seg.retrans_out {
                seg.retrans_out = false;
                self.retrans_out -= 1;
            }
            if !seg.sacked && !seg.lost {
                seg.lost = true;
                self.lost_out += 1;
            }
        }
        debug_assert_eq!(self.retrans_out, 0);
        // Every retransmission mark was just cleared, so every lost segment
        // is now pending retransmission.
        self.lost_pending = self.lost_out;
        self.check_invariants();
    }

    /// Clear all `lost` marks (congestion-window undo after DSACK evidence).
    pub fn unmark_all_lost(&mut self) {
        for seg in self.segs.iter_mut() {
            if seg.lost {
                seg.lost = false;
                self.lost_out -= 1;
            }
        }
        self.lost_pending = 0;
        self.check_invariants();
    }

    /// The next lost segment eligible for retransmission (lost, not SACKed,
    /// not already retransmitted since the mark), lowest sequence first.
    /// `O(1)` when nothing is pending — the common case, checked on every
    /// ACK by the sender's transmit poll.
    pub fn next_lost_seq(&self) -> Option<u64> {
        if self.lost_pending == 0 {
            return None;
        }
        self.segs
            .iter()
            .find(|s| s.lost && !s.sacked && !s.retrans_out)
            .map(|s| s.seq)
    }

    /// Record a (re)transmission of the segment starting at `seq`.
    /// `by_rto` marks RTO-driven retransmissions (feeds both Karn's rule and
    /// S-RTO's activation condition); `fast` records whether the *first*
    /// retransmission was a fast retransmit.
    ///
    /// Returns the segment length, or `None` if `seq` is not outstanding.
    pub fn on_retransmit(
        &mut self,
        now: SimTime,
        seq: u64,
        by_rto: bool,
        fast: bool,
    ) -> Option<u32> {
        let at = self.seek(seq);
        let seg = self.segs.get_mut(at).filter(|s| s.seq == seq)?;
        if !seg.retrans_out {
            if seg.lost && !seg.sacked {
                self.lost_pending -= 1;
            }
            seg.retrans_out = true;
            self.retrans_out += 1;
        }
        seg.retrans_count += 1;
        seg.ever_rto_retrans |= by_rto;
        if seg.first_retrans_fast.is_none() {
            seg.first_retrans_fast = Some(fast);
        }
        seg.last_tx = now;
        let len = seg.len;
        self.check_invariants();
        Some(len)
    }

    /// Borrow a segment by starting offset.
    pub fn seg_at(&self, seq: u64) -> Option<&TxSeg> {
        self.segs.get(self.seek(seq)).filter(|s| s.seq == seq)
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        let sacked = self.segs.iter().filter(|s| s.sacked).count() as u32;
        let lost = self.segs.iter().filter(|s| s.lost).count() as u32;
        let retrans = self.segs.iter().filter(|s| s.retrans_out).count() as u32;
        assert_eq!(sacked, self.sacked_out, "sacked_out drift");
        assert_eq!(lost, self.lost_out, "lost_out drift");
        assert_eq!(retrans, self.retrans_out, "retrans_out drift");
        let pending = self
            .segs
            .iter()
            .filter(|s| s.lost && !s.retrans_out)
            .count() as u32;
        assert_eq!(pending, self.lost_pending, "lost_pending drift");
        assert!(
            self.segs.iter().all(|s| !(s.sacked && s.lost)),
            "seg both sacked and lost"
        );
        let mut prev_end = self.snd_una;
        for s in &self.segs {
            assert_eq!(s.seq, prev_end, "scoreboard gap");
            prev_end = s.seq_end();
        }
        assert_eq!(prev_end, self.snd_nxt, "snd_nxt drift");
    }

    #[cfg(not(debug_assertions))]
    fn check_invariants(&self) {}
}

impl Default for Scoreboard {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_trace::record::SackBlock;

    const MSS: u32 = 1000;

    fn board_with(n: u32) -> Scoreboard {
        let mut sb = Scoreboard::new();
        for _ in 0..n {
            sb.transmit_new(SimTime::ZERO, MSS);
        }
        sb
    }

    #[test]
    fn transmit_tracks_snd_nxt_and_packets_out() {
        let sb = board_with(5);
        assert_eq!(sb.snd_nxt(), 5000);
        assert_eq!(sb.packets_out(), 5);
        assert_eq!(sb.in_flight(), 5);
    }

    #[test]
    fn cumulative_ack_removes_and_samples_rtt() {
        let mut sb = Scoreboard::new();
        sb.transmit_new(SimTime::from_millis(0), MSS);
        sb.transmit_new(SimTime::from_millis(10), MSS);
        let res = sb.ack_to(SimTime::from_millis(110), 2000);
        assert_eq!(res.newly_acked, 2);
        // RTT sample from the highest acked segment: 110 − 10 = 100ms.
        assert_eq!(
            res.rtt_sample,
            Some(simnet::time::SimDuration::from_millis(100))
        );
        assert!(sb.is_empty());
        assert_eq!(sb.snd_una(), 2000);
    }

    #[test]
    fn karns_rule_skips_retransmitted_segments() {
        let mut sb = board_with(1);
        sb.on_retransmit(SimTime::from_millis(300), 0, true, false);
        let res = sb.ack_to(SimTime::from_millis(400), 1000);
        assert_eq!(res.rtt_sample, None);
        assert!(res.acked_retrans);
    }

    #[test]
    fn sack_marks_and_in_flight_follows_eq1() {
        let mut sb = board_with(5);
        let res = sb.apply_sack(&[SackBlock::new(2000, 4000)]);
        assert_eq!(res.newly_sacked, 2);
        assert_eq!(sb.sacked_out(), 2);
        assert_eq!(sb.in_flight(), 3);
        assert_eq!(sb.holes(), 2); // segs 0 and 1 below high_sacked
                                   // Mark head lost, retransmit it: in_flight = 5 + 1 − (2 + 1) = 3.
        assert!(sb.mark_lost_head());
        sb.on_retransmit(SimTime::ZERO, 0, false, true);
        assert_eq!(sb.in_flight(), 3);
    }

    #[test]
    fn sack_does_not_mark_partial_coverage() {
        let mut sb = board_with(3);
        // Block covering only half of segment 1.
        let res = sb.apply_sack(&[SackBlock::new(1000, 1500)]);
        assert_eq!(res.newly_sacked, 0);
        assert_eq!(sb.sacked_out(), 0);
    }

    #[test]
    fn fack_marking_requires_dupthres_worth_of_sack_above() {
        let mut sb = board_with(6);
        sb.apply_sack(&[SackBlock::new(3000, 6000)]); // segs 3,4,5 sacked
        let marked = sb.mark_lost_fack(3, MSS);
        // seg0 end=1000: 1000+2000=3000 ≤ 6000 ⇒ lost. seg1 end 2000 ⇒ 4000 ≤ 6000 lost.
        // seg2 end 3000 ⇒ 5000 ≤ 6000 lost.
        assert_eq!(marked, 3);
        assert_eq!(sb.lost_out(), 3);
        assert_eq!(sb.in_flight(), 0);
    }

    #[test]
    fn retransmitted_segment_is_not_remarked_lost_by_sack_rules() {
        // This is the f-double stall mechanism: after fast retransmit, only
        // an RTO may re-mark the segment.
        let mut sb = board_with(5);
        sb.apply_sack(&[SackBlock::new(1000, 5000)]);
        assert!(sb.mark_lost_head());
        assert_eq!(sb.next_lost_seq(), Some(0));
        sb.on_retransmit(SimTime::ZERO, 0, false, true);
        // More SACK-driven marking must not touch the retransmitted head.
        assert_eq!(sb.mark_lost_fack(3, MSS), 0);
        assert!(!sb.mark_lost_head());
        assert_eq!(sb.next_lost_seq(), None);
        // RTO clears the retransmission mark and re-marks everything.
        sb.mark_all_lost();
        assert_eq!(sb.next_lost_seq(), Some(0));
        assert_eq!(sb.retrans_out(), 0);
    }

    #[test]
    fn mark_all_lost_preserves_sacked() {
        let mut sb = board_with(4);
        sb.apply_sack(&[SackBlock::new(2000, 3000)]);
        sb.mark_all_lost();
        assert_eq!(sb.lost_out(), 3);
        assert_eq!(sb.sacked_out(), 1);
        assert_eq!(sb.in_flight(), 0);
    }

    #[test]
    fn ack_of_lost_marked_segment_reports_reordering_evidence() {
        let mut sb = board_with(2);
        assert!(sb.mark_lost_head());
        let res = sb.ack_to(SimTime::from_millis(50), 1000);
        assert!(res.acked_lost);
        assert_eq!(sb.lost_out(), 0);
    }

    #[test]
    fn undo_clears_lost_marks() {
        let mut sb = board_with(3);
        sb.mark_all_lost();
        assert_eq!(sb.lost_out(), 3);
        sb.unmark_all_lost();
        assert_eq!(sb.lost_out(), 0);
        assert_eq!(sb.in_flight(), 3);
    }

    #[test]
    fn duplicate_ack_is_ignored() {
        let mut sb = board_with(2);
        sb.ack_to(SimTime::ZERO, 1000);
        let res = sb.ack_to(SimTime::ZERO, 1000);
        assert_eq!(res.newly_acked, 0);
        assert_eq!(sb.snd_una(), 1000);
    }

    #[test]
    fn retrans_count_and_rto_history_accumulate() {
        let mut sb = board_with(1);
        sb.on_retransmit(SimTime::from_millis(1), 0, false, true);
        // RTO clears retrans_out so the segment can be retransmitted again.
        sb.mark_all_lost();
        sb.on_retransmit(SimTime::from_millis(2), 0, true, false);
        let seg = sb.seg_at(0).unwrap();
        assert_eq!(seg.retrans_count, 2);
        assert!(seg.ever_rto_retrans);
        assert_eq!(seg.first_retrans_fast, Some(true));
    }
}

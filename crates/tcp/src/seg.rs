//! The on-the-(simulated)-wire TCP segment.
//!
//! Sequence numbers are 64-bit stream offsets (no wraparound inside the
//! simulator); the `tcp-trace` pcap layer maps them to 32-bit wire numbers.
//! SYN/FIN do not consume sequence space here — they are pure flags, with
//! FIN piggybacked on the final data segment by the sender.

pub use tcp_trace::record::{SackBlock, SackList, SegFlags, SACK_CAP};

/// Default maximum segment size (typical for a 1500-byte MTU path with
/// timestamps enabled, matching the paper's traces).
pub const DEFAULT_MSS: u32 = 1448;

/// A TCP segment in flight. `Copy` — the entire segment, SACK blocks
/// included, lives inline, so handing one to a link or trace never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Stream offset of the first payload byte.
    pub seq: u64,
    /// Payload length in bytes (0 for pure ACKs and bare SYN/FIN).
    pub len: u32,
    /// Header flags.
    pub flags: SegFlags,
    /// Cumulative acknowledgment (peer stream offset expected next).
    pub ack: u64,
    /// Advertised receive window in bytes.
    pub rwnd: u64,
    /// SACK blocks over the peer's stream, most recent first (inline).
    pub sack: SackList,
    /// Whether `sack[0]` is a DSACK (RFC 2883).
    pub dsack: bool,
    /// Zero-window probe marker: behaviourally a 1-byte out-of-window
    /// probe — the receiver must answer it immediately with its current
    /// window (kept out of sequence space to keep the scoreboard clean).
    pub probe: bool,
}

impl Segment {
    /// A pure acknowledgment.
    pub fn pure_ack(ack: u64, rwnd: u64) -> Self {
        Segment {
            seq: 0,
            len: 0,
            flags: SegFlags::ACK,
            ack,
            rwnd,
            sack: SackList::new(),
            dsack: false,
            probe: false,
        }
    }

    /// Stream offset one past the last payload byte.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.len as u64
    }

    /// True if the segment carries payload.
    pub fn has_data(&self) -> bool {
        self.len > 0
    }

    /// Approximate wire size in bytes (Ethernet + IPv4 + TCP headers +
    /// payload), used for link serialization timing.
    pub fn wire_len(&self) -> u32 {
        let opts = if self.sack.is_empty() {
            12
        } else {
            12 + 4 + 8 * self.sack.len() as u32
        };
        54 + opts + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_ack_has_no_data() {
        let a = Segment::pure_ack(1000, 65535);
        assert!(!a.has_data());
        assert_eq!(a.ack, 1000);
        assert!(a.flags.ack);
    }

    #[test]
    fn wire_len_includes_sack_options() {
        let mut s = Segment::pure_ack(0, 0);
        let base = s.wire_len();
        s.sack.push(SackBlock::new(10, 20));
        assert_eq!(s.wire_len(), base + 12);
    }

    #[test]
    fn seq_end_is_exclusive() {
        let mut s = Segment::pure_ack(0, 0);
        s.seq = 100;
        s.len = 50;
        assert_eq!(s.seq_end(), 150);
    }
}

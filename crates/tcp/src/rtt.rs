//! RFC 6298 round-trip-time estimation and retransmission timeout.
//!
//! Matches the Linux implementation the paper's servers ran: SRTT/RTTVAR
//! with the standard gains (1/8, 1/4), a **200ms RTO floor** (`TCP_RTO_MIN`)
//! and 120s ceiling (`TCP_RTO_MAX`), and a 1s default before the first
//! sample. Karn's rule (no samples from retransmitted segments) is enforced
//! by the caller, which only feeds samples for never-retransmitted segments.
//!
//! The paper's Figure 1 observation — RTOs an order of magnitude above the
//! RTT for 40% of flows — emerges directly from the 200ms floor plus the
//! `SRTT + 4·RTTVAR` formula on jittery paths.

use simnet::time::SimDuration;

/// Maximum exponential-backoff shift applied to the RTO
/// (`TCP_BACKOFF_MAX` in Linux is 15 doublings before the counter
/// saturates). The sender's `rto_backoff` / `persist_backoff` counters
/// saturate at this value and [`RttEstimator::rto_backed_off`] caps its
/// shift at the same constant, so the two can never drift apart.
pub const MAX_RTO_BACKOFF: u32 = 15;

/// Configuration for the estimator (Linux defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttConfig {
    /// Lower bound on the RTO (`TCP_RTO_MIN`, 200ms in Linux).
    pub min_rto: SimDuration,
    /// Upper bound on the RTO (`TCP_RTO_MAX`, 120s in Linux).
    pub max_rto: SimDuration,
    /// RTO before any RTT sample exists (RFC 6298 §2.1: 1s).
    pub initial_rto: SimDuration,
}

impl Default for RttConfig {
    fn default() -> Self {
        RttConfig {
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(120),
            initial_rto: SimDuration::from_secs(1),
        }
    }
}

/// SRTT/RTTVAR/RTO state for one connection.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    cfg: RttConfig,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    last_sample: Option<SimDuration>,
}

impl RttEstimator {
    /// A fresh estimator with no samples.
    pub fn new(cfg: RttConfig) -> Self {
        RttEstimator {
            cfg,
            srtt: None,
            rttvar: SimDuration::ZERO,
            last_sample: None,
        }
    }

    /// Feed one RTT sample (from a never-retransmitted segment).
    pub fn observe(&mut self, rtt: SimDuration) {
        self.last_sample = Some(rtt);
        match self.srtt {
            None => {
                // First measurement: SRTT = R, RTTVAR = R/2.
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3) / 4 + err / 4;
                // SRTT = 7/8·SRTT + 1/8·R
                self.srtt = Some((srtt * 7) / 8 + rtt / 8);
            }
        }
    }

    /// The smoothed RTT; `None` before the first sample.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The most recent raw sample.
    pub fn last_sample(&self) -> Option<SimDuration> {
        self.last_sample
    }

    /// Current base RTO (before exponential backoff): Linux
    /// `__tcp_set_rto` semantics, `SRTT + max(4·RTTVAR, TCP_RTO_MIN)`,
    /// capped at the ceiling. The 200ms floor applies to the *variance
    /// term*, not the final sum — so the base RTO always sits at least
    /// one full `min_rto` above SRTT (which is why production RTOs run
    /// an order of magnitude above the RTT; Fig. 1b).
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => self.cfg.initial_rto,
            Some(srtt) => (srtt + (self.rttvar * 4).max(self.cfg.min_rto)).min(self.cfg.max_rto),
        }
    }

    /// RTO after `backoff` doublings, capped at the ceiling. The shift is
    /// capped at [`MAX_RTO_BACKOFF`], matching where the sender's backoff
    /// counters saturate.
    pub fn rto_backed_off(&self, backoff: u32) -> SimDuration {
        let shift = backoff.min(MAX_RTO_BACKOFF);
        self.rto()
            .saturating_mul(1u64 << shift)
            .min(self.cfg.max_rto)
    }

    /// The config in use.
    pub fn config(&self) -> RttConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn initial_rto_is_one_second() {
        let e = RttEstimator::new(RttConfig::default());
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_initializes_srtt_and_var() {
        let mut e = RttEstimator::new(RttConfig::default());
        e.observe(ms(100));
        assert_eq!(e.srtt(), Some(ms(100)));
        // RTO = 100 + 4·50 = 300ms.
        assert_eq!(e.rto(), ms(300));
    }

    #[test]
    fn steady_samples_converge_toward_floor() {
        let mut e = RttEstimator::new(RttConfig::default());
        for _ in 0..100 {
            e.observe(ms(50));
        }
        // RTTVAR decays toward 0 so the floored variance term dominates:
        // RTO = SRTT + max(4·RTTVAR, 200ms) = 50 + 200 = 250ms. (Linux
        // floors the variance term, not the sum — the RTO never collapses
        // onto the floor itself while SRTT > 0.)
        assert_eq!(e.rto(), ms(250));
        let srtt = e.srtt().unwrap();
        assert!(srtt >= ms(49) && srtt <= ms(51), "srtt {srtt}");
    }

    #[test]
    fn jitter_inflates_rto_well_above_rtt() {
        // Alternate 50ms and 250ms samples: mean RTT 150ms but RTO should
        // sit several times higher — the paper's Fig. 1b effect.
        let mut e = RttEstimator::new(RttConfig::default());
        for i in 0..200 {
            e.observe(if i % 2 == 0 { ms(50) } else { ms(250) });
        }
        let rto = e.rto();
        assert!(rto > ms(400), "rto {rto}");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::new(RttConfig::default());
        for _ in 0..100 {
            e.observe(ms(50));
        }
        assert_eq!(e.rto_backed_off(0), ms(250));
        assert_eq!(e.rto_backed_off(1), ms(500));
        assert_eq!(e.rto_backed_off(3), ms(2000));
        assert_eq!(e.rto_backed_off(30), SimDuration::from_secs(120));
    }

    #[test]
    fn backoff_shift_caps_at_max_rto_backoff() {
        // Use a ceiling high enough that the shift cap — not max_rto — is
        // what limits the result, so drift in the cap is observable.
        let mut e = RttEstimator::new(RttConfig {
            max_rto: SimDuration::from_secs(u64::MAX / 2_000_000),
            ..RttConfig::default()
        });
        e.observe(ms(50)); // base RTO = 50 + max(100, 200) = 250ms
        let base = e.rto();
        assert_eq!(base, ms(250));
        let at_cap = base.saturating_mul(1u64 << MAX_RTO_BACKOFF);
        assert_eq!(e.rto_backed_off(MAX_RTO_BACKOFF), at_cap);
        // Beyond the cap the shift saturates: 16 and 17 behave like 15.
        assert_eq!(e.rto_backed_off(MAX_RTO_BACKOFF + 1), at_cap);
        assert_eq!(e.rto_backed_off(MAX_RTO_BACKOFF + 2), at_cap);
    }

    #[test]
    fn rto_never_below_floor_or_above_ceiling() {
        // A microsecond-scale RTT still yields RTO ≥ min_rto: the floored
        // variance term guarantees SRTT + 200ms, here 300µs + 200ms.
        let mut e = RttEstimator::new(RttConfig::default());
        e.observe(SimDuration::from_micros(300));
        assert_eq!(e.rto(), SimDuration::from_micros(200_300));
        assert!(e.rto() >= e.config().min_rto);
        let mut e2 = RttEstimator::new(RttConfig::default());
        e2.observe(SimDuration::from_secs(300));
        assert_eq!(e2.rto(), SimDuration::from_secs(120));
    }
}

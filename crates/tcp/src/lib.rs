//! # tcp-sim — a Linux-2.6.32-style TCP stack for discrete-event simulation
//!
//! This crate implements the TCP sender and receiver behaviour of the kernel
//! studied in *"Demystifying and Mitigating TCP Stalls at the Server Side"*
//! (CoNEXT 2015) — CentOS 6.2, Linux 2.6.32 — together with the paper's
//! **S-RTO** mitigation and a **TLP** baseline, and a flow-level simulation
//! driver that captures server-side packet traces for the TAPO analyzer.
//!
//! Modules:
//!
//! * [`seg`] — the wire segment (64-bit stream offsets, SACK/DSACK).
//! * [`rtt`] — RFC 6298 SRTT/RTTVAR/RTO with the Linux 200ms floor.
//! * [`cc`] — Reno and CUBIC congestion avoidance.
//! * [`scoreboard`] — per-segment SACK/LOST/RETRANS marks and the Table 2
//!   counters (`packets_out`, `sacked_out`, `lost_out`, `retrans_out`).
//! * [`sender`] — the Open/Disorder/Recovery/Loss state machine (Fig. 4),
//!   rate-halving recovery, RTO with exponential backoff, limited transmit,
//!   DSACK undo, zero-window persist probing.
//! * [`receiver`] — reassembly, SACK/DSACK generation, delayed ACKs,
//!   finite receive buffer (small-init-rwnd clients).
//! * [`recovery`] — Native / TLP / S-RTO mechanism selection.
//! * [`conn`] — a full-duplex endpoint with ACK piggybacking.
//! * [`sim`] — a scripted client↔server flow simulation over
//!   [`simnet`] links with tcpdump-like capture at the server.
//! * [`script`] — a packetdrill-style DSL for precise sender scenarios.
//! * [`multi`] — N connections through one shared bottleneck, where
//!   congestion and continuous-loss bursts emerge mechanistically.
//!
//! ## Fidelity and simplifications
//!
//! The behaviours the paper's stall taxonomy depends on are implemented
//! faithfully (see each module's docs). Known simplifications, none of which
//! affect the stall classes: no header prediction or ECN, no Nagle (the
//! studied services send MSS-sized bursts), FIN piggybacks on the final data
//! segment and bare FINs are not retransmitted, and TLP's probe-masked-loss
//! detection (which only adjusts cwnd after the fact) is omitted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod conn;
pub mod multi;
pub mod receiver;
pub mod recovery;
pub mod rtt;
pub mod scoreboard;
pub mod script;
pub mod seg;
pub mod sender;
pub mod sim;

pub use conn::Host;
pub use receiver::{Receiver, ReceiverConfig};
pub use recovery::{RecoveryMechanism, SrtoConfig, TlpConfig};
pub use seg::{Segment, DEFAULT_MSS};
pub use sender::{CaState, Sender, SenderConfig, SenderStats};
pub use sim::{FlowOutcome, FlowScript, FlowSim, FlowSimConfig, RequestSpec};

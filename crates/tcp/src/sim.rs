//! End-to-end flow simulation: a client and a server [`Host`] connected by
//! two [`simnet::Link`]s, with a scripted application layer and packet
//! capture at the server NIC — the simulated equivalent of the paper's
//! production front-end servers running tcpdump.
//!
//! The application layer reproduces the three services' behaviours:
//!
//! * **requests** — the client issues one or more requests on the same
//!   connection, each preceded by a think time (client-idle stalls);
//! * **back-end fetch delay** — the server may have to retrieve content
//!   before the first response byte is available (data-unavailable stalls);
//! * **chunked supply** — the server application may deliver the response
//!   to TCP in chunks with gaps (resource-constraint stalls);
//! * **client drain rate** — the client application may read slower than
//!   the network delivers (zero-window stalls).

use simnet::event::EventQueue;
use simnet::link::{Delivery, Link, LinkConfig};
use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use tcp_trace::flow::{FlowKey, FlowTrace};
use tcp_trace::oracle::{CauseEvent, CauseKind, RtoContext};
use tcp_trace::record::{Direction, RecordSink, TraceRecord};

use crate::conn::Host;
use crate::receiver::ReceiverConfig;
use crate::seg::{SackList, SegFlags, Segment};
use crate::sender::{SenderConfig, SenderStats};

/// One request/response exchange within a flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSpec {
    /// Client think time before issuing this request (measured from
    /// connection establishment for the first request, from response
    /// completion for later ones).
    pub think_time: SimDuration,
    /// Request size in bytes (fits one segment).
    pub request_bytes: u32,
    /// Response size in bytes.
    pub response_bytes: u64,
    /// Server-side delay before the first response byte is available
    /// (back-end fetch; 0 for locally cached content).
    pub backend_delay: SimDuration,
    /// If set, the server supplies the response in chunks of `chunk_bytes`
    /// separated by `gap` (resource-constraint behaviour).
    pub supply: Option<SupplyPauses>,
}

/// Chunked server-side data supply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyPauses {
    /// Bytes handed to TCP per chunk.
    pub chunk_bytes: u64,
    /// Pause between chunks.
    pub gap: SimDuration,
}

impl RequestSpec {
    /// A simple immediate request for `response_bytes` of locally available
    /// content.
    pub fn simple(response_bytes: u64) -> Self {
        RequestSpec {
            think_time: SimDuration::ZERO,
            request_bytes: 300,
            response_bytes,
            backend_delay: SimDuration::ZERO,
            supply: None,
        }
    }
}

/// The application script driving one flow.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlowScript {
    /// The request sequence.
    pub requests: Vec<RequestSpec>,
}

impl FlowScript {
    /// A one-request script.
    pub fn single(response_bytes: u64) -> Self {
        FlowScript {
            requests: vec![RequestSpec::simple(response_bytes)],
        }
    }
}

/// Full configuration of one simulated flow.
#[derive(Debug, Clone)]
pub struct FlowSimConfig {
    /// Server's data-direction sender.
    pub server_tx: SenderConfig,
    /// Server's request-direction receiver.
    pub server_rx: ReceiverConfig,
    /// Client's request-direction sender.
    pub client_tx: SenderConfig,
    /// Client's data-direction receiver (its `buf_bytes` is the initial
    /// advertised window in the SYN).
    pub client_rx: ReceiverConfig,
    /// Client-to-server link.
    pub c2s: LinkConfig,
    /// Server-to-client link.
    pub s2c: LinkConfig,
    /// Client application drain rate in bytes/s; `None` reads immediately.
    pub client_drain: Option<u64>,
    /// Probability, per rate-limited read, that the client application
    /// pauses (stops reading) for an exponentially distributed interval —
    /// the behaviour behind long zero-window stalls.
    pub client_pause_prob: f64,
    /// Mean pause duration.
    pub client_pause: SimDuration,
    /// The application script.
    pub script: FlowScript,
    /// Simulation cut-off.
    pub max_time: SimDuration,
    /// SYN / SYN-ACK retransmission timeout (3s on the paper's kernel).
    pub syn_timeout: SimDuration,
    /// Identifier used for the synthetic flow key.
    pub flow_id: u32,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            server_tx: SenderConfig::default(),
            server_rx: ReceiverConfig {
                buf_bytes: 1 << 20,
                ..ReceiverConfig::default()
            },
            client_tx: SenderConfig::default(),
            client_rx: ReceiverConfig::default(),
            c2s: LinkConfig::default(),
            s2c: LinkConfig::default(),
            client_drain: None,
            client_pause_prob: 0.0,
            client_pause: SimDuration::from_secs(1),
            script: FlowScript::single(100_000),
            max_time: SimDuration::from_secs(300),
            syn_timeout: SimDuration::from_secs(3),
            flow_id: 0,
        }
    }
}

/// What one flow simulation produced.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// The server-side packet capture.
    pub trace: FlowTrace,
    /// Whether the handshake completed.
    pub established: bool,
    /// Whether every response was fully acknowledged before the cut-off.
    pub completed: bool,
    /// Per-request latency: request issued at the client → all response
    /// bytes cumulatively ACKed at the server.
    pub request_latencies: Vec<SimDuration>,
    /// Connection establishment instant (client side).
    pub established_at: Option<SimTime>,
    /// Simulation end time.
    pub finished_at: SimTime,
    /// Server sender counters (retransmissions, RTOs, probes…).
    pub server_stats: SenderStats,
    /// Total response bytes across all requests.
    pub response_bytes: u64,
    /// Smoothed RTT at the server when the flow ended.
    pub final_srtt: Option<SimDuration>,
    /// Server→client link counters (wire loss ground truth).
    pub s2c_stats: simnet::link::LinkStats,
    /// Client→server link counters.
    pub c2s_stats: simnet::link::LinkStats,
    /// Ground-truth cause events, in emission (time) order. Empty unless
    /// the simulation ran with [`FlowSim::with_oracle`]. The oracle is a
    /// pure side-channel: enabling it never changes the trace or any other
    /// outcome field (it observes decisions already made; it draws no
    /// randomness and alters no timing).
    pub oracle: Vec<CauseEvent>,
}

/// Ground-truth recorder: allocated only when the oracle is enabled.
#[derive(Debug, Default)]
struct OracleState {
    events: Vec<CauseEvent>,
    /// Data segments the s2c link dropped: (drop time, seq, len).
    dropped_data: Vec<(SimTime, u64, u64)>,
    /// Total response bytes the application has supplied to the server's
    /// TCP so far (stream offset of the supply edge).
    supplied: u64,
    /// Dedupe keys: start of the last recorded delay burst per link.
    last_burst_s2c: Option<SimTime>,
    last_burst_c2s: Option<SimTime>,
    /// Index of the open zero-window interval event, if the client's last
    /// advertisement was a zero window.
    zero_rwnd_event: Option<usize>,
}

/// Recyclable per-worker simulator arenas: the event queue (calendar ring,
/// payload slab, overflow vector), the segment scratch buffer, and the
/// per-request bookkeeping vectors of a [`FlowSim`].
///
/// A worker threads one `FlowScratch` through every flow it simulates:
/// [`FlowSim::with_sink_scratch`] takes the arenas, the flow runs in them,
/// and [`FlowSim::run_streaming_into`] hands them back reset — so the
/// per-flow hot path stops paying a fresh round of heap allocations per
/// flow. A flow run in recycled arenas is bit-identical to one run in fresh
/// arenas: every arena is rewound to its `new()` state between flows (see
/// [`simnet::event::EventQueue::reset`]); only the capacity is reused.
#[derive(Debug, Default)]
pub struct FlowScratch {
    q: EventQueue<Ev>,
    seg_buf: Vec<Segment>,
    request_boundary_in: Vec<u64>,
    response_boundary_out: Vec<u64>,
    issue_times: Vec<Option<SimTime>>,
    latencies: Vec<Option<SimDuration>>,
    supplies: std::collections::VecDeque<Supply>,
    server_ticks: std::collections::BinaryHeap<std::cmp::Reverse<SimTime>>,
    client_ticks: std::collections::BinaryHeap<std::cmp::Reverse<SimTime>>,
}

/// One pending application-supply step: after `delay`, hand `bytes` to the
/// server's TCP (and close if this is the final step). `first` marks the
/// head of a response (the delay is a backend fetch, not an inter-chunk
/// gap) — consumed only by the ground-truth oracle.
#[derive(Debug, Clone, Copy)]
struct Supply {
    delay: SimDuration,
    bytes: u64,
    close: bool,
    first: bool,
}

impl FlowScratch {
    /// Fresh arenas with no retained capacity yet.
    pub fn new() -> Self {
        Self::default()
    }
}

#[derive(Debug)]
enum Ev {
    ToServer(Segment),
    ToClient(Segment),
    TickServer,
    TickClient,
    SynRetrans(u32),
    SynAckRetrans(u32),
    IssueRequest(usize),
    Supply { bytes: u64, close: bool },
    ClientRead,
}

/// Discrete-event simulation of a single TCP flow.
///
/// Generic over the record sink `S`: the default `FlowTrace` materializes
/// the server-side capture ([`FlowSim::run`]), while
/// [`FlowSim::with_sink`] + [`FlowSim::run_streaming`] stream each record
/// into an arbitrary consumer (e.g. a streaming analyzer) without ever
/// building the per-flow trace.
pub struct FlowSim<S: RecordSink = FlowTrace> {
    // Application-level configuration (the network/stack configs are moved
    // into the links and hosts at construction — no per-flow clones).
    requests: Vec<RequestSpec>,
    client_drain: Option<u64>,
    client_pause_prob: f64,
    client_pause: SimDuration,
    max_time: SimDuration,
    syn_timeout: SimDuration,
    q: EventQueue<Ev>,
    server: Host,
    client: Host,
    c2s: Link,
    s2c: Link,
    trace: S,
    established_client: bool,
    established_server: bool,
    established_at: Option<SimTime>,
    request_boundary_in: Vec<u64>,
    response_boundary_out: Vec<u64>,
    issue_times: Vec<Option<SimTime>>,
    latencies: Vec<Option<SimDuration>>,
    next_request_seen: usize,
    /// First request whose latency is still unresolved — `snd_una` is
    /// monotone and requests are issued in order, so completion checks
    /// resume here instead of rescanning every request per ACK.
    next_resp_done: usize,
    /// First response the client-progress check hasn't fully processed;
    /// `rcv_nxt` is monotone, so earlier entries never need revisiting.
    next_progress: usize,
    /// Latencies still unset; `done()` in O(1) on the per-event hot path.
    pending_latencies: usize,
    read_pending: bool,
    supplies: std::collections::VecDeque<Supply>,
    supply_active: bool,
    app_rng: SimRng,
    synack_sent_at: Option<SimTime>,
    rtt_seeded: bool,
    /// Scratch buffer of segments produced by the current event, reused so
    /// the per-event hot path never allocates.
    seg_buf: Vec<Segment>,
    /// Pending tick times per host, earliest first. [`FlowSim::resched_tick`]
    /// is called after every handler, and timer deadlines usually move
    /// *later* (each ACK re-arms the RTO) — without suppression the queue
    /// drowns in duplicate ticks (measured: ~10 stale ticks per packet).
    /// A tick is only scheduled when it's strictly earlier than every tick
    /// already pending for that host; a tick that fires before the current
    /// deadline is harmless (`on_tick` past no expired timer is a no-op)
    /// and re-arms the chain at the then-current deadline on pop.
    server_ticks: std::collections::BinaryHeap<std::cmp::Reverse<SimTime>>,
    client_ticks: std::collections::BinaryHeap<std::cmp::Reverse<SimTime>>,
    /// Ground-truth recorder; `None` (the default) means no oracle.
    oracle: Option<Box<OracleState>>,
}

impl FlowSim<FlowTrace> {
    /// Build a flow simulation that materializes the server-side trace;
    /// `seed` controls all stochastic behaviour. The configuration is
    /// consumed: links and hosts take ownership of their sub-configs rather
    /// than cloning them.
    pub fn new(cfg: FlowSimConfig, seed: u64) -> Self {
        let trace = FlowTrace::new(FlowKey::synthetic(cfg.flow_id));
        FlowSim::with_sink(cfg, seed, trace)
    }

    /// Run to completion (or the configured cut-off) and return the outcome,
    /// trace included.
    pub fn run(self) -> FlowOutcome {
        let (mut out, trace) = self.run_streaming();
        out.trace = trace;
        out
    }
}

impl<S: RecordSink> FlowSim<S> {
    /// Build a flow simulation that streams every server-side record into
    /// `sink` instead of the default materialized [`FlowTrace`].
    pub fn with_sink(cfg: FlowSimConfig, seed: u64, sink: S) -> Self {
        Self::assemble(cfg, seed, sink, FlowScratch::default())
    }

    /// Borrowed-scratch construction: like [`FlowSim::with_sink`], but the
    /// simulator is assembled inside `scratch`'s recycled arenas (event
    /// slab, segment buffer, bookkeeping vectors) instead of fresh
    /// allocations. The scratch is left empty until
    /// [`FlowSim::run_streaming_into`] returns the arenas to it.
    pub fn with_sink_scratch(
        cfg: FlowSimConfig,
        seed: u64,
        sink: S,
        scratch: &mut FlowScratch,
    ) -> Self {
        Self::assemble(cfg, seed, sink, std::mem::take(scratch))
    }

    fn assemble(cfg: FlowSimConfig, seed: u64, sink: S, scratch: FlowScratch) -> Self {
        let FlowSimConfig {
            server_tx,
            server_rx,
            client_tx,
            client_rx,
            c2s,
            s2c,
            client_drain,
            client_pause_prob,
            client_pause,
            script,
            max_time,
            syn_timeout,
            flow_id: _,
        } = cfg;
        let rng = SimRng::seed(seed);
        let c2s = Link::new(c2s, rng.fork(1));
        let s2c = Link::new(s2c, rng.fork(2));
        let app_rng = rng.fork(3);
        let server = Host::new(server_tx, server_rx);
        let client = Host::new(client_tx, client_rx);
        let FlowScratch {
            q,
            mut seg_buf,
            mut request_boundary_in,
            mut response_boundary_out,
            mut issue_times,
            mut latencies,
            mut supplies,
            mut server_ticks,
            mut client_ticks,
        } = scratch;
        server_ticks.clear();
        client_ticks.clear();
        debug_assert!(
            q.is_empty() && q.now() == SimTime::ZERO,
            "scratch queue must be reset between flows"
        );
        seg_buf.clear();
        request_boundary_in.clear();
        response_boundary_out.clear();
        supplies.clear();
        let mut req_edge = 0u64;
        let mut resp_edge = 0u64;
        for r in &script.requests {
            req_edge += r.request_bytes as u64;
            resp_edge += r.response_bytes;
            request_boundary_in.push(req_edge);
            response_boundary_out.push(resp_edge);
        }
        let n = script.requests.len();
        issue_times.clear();
        issue_times.resize(n, None);
        latencies.clear();
        latencies.resize(n, None);
        FlowSim {
            requests: script.requests,
            client_drain,
            client_pause_prob,
            client_pause,
            max_time,
            syn_timeout,
            q,
            server,
            client,
            c2s,
            s2c,
            trace: sink,
            established_client: false,
            established_server: false,
            established_at: None,
            request_boundary_in,
            response_boundary_out,
            issue_times,
            latencies,
            next_request_seen: 0,
            next_resp_done: 0,
            next_progress: 0,
            pending_latencies: n,
            read_pending: false,
            supplies,
            supply_active: false,
            app_rng,
            synack_sent_at: None,
            rtt_seeded: false,
            seg_buf,
            server_ticks,
            client_ticks,
            oracle: None,
        }
    }

    /// Enable the ground-truth oracle: the run will label every simulated
    /// cause event (link drops, delay bursts, zero windows, client idle
    /// intervals, app-supply gaps, timer firings) with flow-time stamps,
    /// returned in [`FlowOutcome::oracle`]. The oracle rides outside the
    /// packet stream and cannot perturb packet-visible output: it consumes
    /// no randomness and changes no timing, so the trace is byte-identical
    /// with and without it.
    pub fn with_oracle(mut self) -> Self {
        self.oracle = Some(Box::default());
        self
    }

    /// Run to completion (or the configured cut-off) and return the outcome
    /// plus the sink that received every record. The outcome's `trace` field
    /// is left empty — the records live in (or were consumed by) the sink.
    pub fn run_streaming(mut self) -> (FlowOutcome, S) {
        let outcome = self.run_core();
        (outcome, self.trace)
    }

    /// Run like [`FlowSim::run_streaming`], then return the recycled arenas
    /// to `scratch` — reset and ready for the next
    /// [`FlowSim::with_sink_scratch`] — instead of dropping them.
    pub fn run_streaming_into(mut self, scratch: &mut FlowScratch) -> (FlowOutcome, S) {
        let outcome = self.run_core();
        let FlowSim {
            mut q,
            mut seg_buf,
            request_boundary_in,
            response_boundary_out,
            issue_times,
            latencies,
            mut supplies,
            mut server_ticks,
            mut client_ticks,
            trace,
            ..
        } = self;
        q.reset();
        seg_buf.clear();
        supplies.clear();
        server_ticks.clear();
        client_ticks.clear();
        *scratch = FlowScratch {
            q,
            seg_buf,
            request_boundary_in,
            response_boundary_out,
            issue_times,
            latencies,
            supplies,
            server_ticks,
            client_ticks,
        };
        (outcome, trace)
    }

    fn run_core(&mut self) -> FlowOutcome {
        self.send_syn(SimTime::ZERO, 0);
        let deadline = SimTime::ZERO + self.max_time;
        let mut finished_at = SimTime::ZERO;
        while let Some((t, ev)) = self.q.pop() {
            if t > deadline {
                finished_at = deadline;
                break;
            }
            finished_at = t;
            self.dispatch(t, ev);
            if self.done() {
                break;
            }
        }
        let completed = self.done();
        let s2c_stats = self.s2c.stats();
        let c2s_stats = self.c2s.stats();
        FlowOutcome {
            established: self.established_client,
            completed,
            request_latencies: self
                .latencies
                .iter()
                .map(|l| l.unwrap_or(SimDuration::MAX))
                .collect(),
            established_at: self.established_at,
            finished_at,
            server_stats: self.server.tx.stats(),
            response_bytes: *self.response_boundary_out.last().unwrap_or(&0),
            final_srtt: self.server.tx.rtt().srtt(),
            s2c_stats,
            c2s_stats,
            oracle: self.oracle.take().map(|o| o.events).unwrap_or_default(),
            trace: FlowTrace::default(),
        }
    }

    fn done(&self) -> bool {
        self.pending_latencies == 0
    }

    // ------------------------------------------------------------ events

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::ToServer(seg) => self.server_receive(now, seg),
            Ev::ToClient(seg) => self.client_receive(now, seg),
            Ev::TickServer => {
                let popped = self.server_ticks.pop();
                debug_assert_eq!(popped, Some(std::cmp::Reverse(now)));
                // Snapshot the sender *before* the tick: if a timer fires
                // inside `on_tick`, the pre-tick scoreboard head is the
                // segment the timer is repairing (afterwards it may already
                // be marked retransmitted).
                let pre = self
                    .oracle
                    .as_ref()
                    .map(|_| (self.server.tx.stats(), self.server_rto_context()));
                let mut out = std::mem::take(&mut self.seg_buf);
                self.server.on_tick(now, &mut out);
                if let Some((pre_stats, ctx)) = pre {
                    let post = self.server.tx.stats();
                    let o = self.oracle.as_mut().expect("oracle checked above");
                    if post.rto_count > pre_stats.rto_count {
                        if let Some(ctx) = ctx {
                            o.events.push(CauseEvent::at(now, CauseKind::RtoFired(ctx)));
                        }
                    }
                    if post.tlp_probes + post.srto_probes + post.tracks_forced
                        > pre_stats.tlp_probes + pre_stats.srto_probes + pre_stats.tracks_forced
                    {
                        o.events.push(CauseEvent::at(now, CauseKind::ProbeFired));
                    }
                    if post.window_probes > pre_stats.window_probes {
                        o.events.push(CauseEvent::at(now, CauseKind::WindowProbe));
                    }
                }
                self.server_send(now, &mut out);
                self.seg_buf = out;
            }
            Ev::TickClient => {
                let popped = self.client_ticks.pop();
                debug_assert_eq!(popped, Some(std::cmp::Reverse(now)));
                let mut out = std::mem::take(&mut self.seg_buf);
                self.client.on_tick(now, &mut out);
                self.client_send(now, &mut out);
                self.seg_buf = out;
            }
            Ev::SynRetrans(attempt) => {
                if !self.established_client && attempt < 6 {
                    self.send_syn(now, attempt);
                }
            }
            Ev::SynAckRetrans(attempt) => {
                if !self.established_server && attempt < 6 {
                    self.send_synack(now, attempt);
                }
            }
            Ev::IssueRequest(i) => self.issue_request(now, i),
            Ev::Supply { bytes, close } => {
                if let Some(o) = &mut self.oracle {
                    o.supplied += bytes;
                }
                self.server.tx.app_write(bytes);
                if close {
                    self.server.tx.app_close();
                }
                let mut out = std::mem::take(&mut self.seg_buf);
                self.server.poll(now, &mut out);
                self.server_send(now, &mut out);
                self.seg_buf = out;
                self.supply_active = false;
                self.pump_supply(now);
            }
            Ev::ClientRead => {
                // One rate-limited read tick.
                let chunk = self.client.rx.config().mss as u64;
                let mut out = std::mem::take(&mut self.seg_buf);
                self.client.app_read(now, chunk, &mut out);
                self.client_send(now, &mut out);
                self.seg_buf = out;
                if self.client.rx.buffered() > 0 {
                    let rate = self.client_drain.unwrap_or(u64::MAX).max(1);
                    let mut interval = SimDuration::from_secs_f64(chunk as f64 / rate as f64);
                    // Occasionally the client application goes quiet.
                    if self.client_pause_prob > 0.0 && self.app_rng.chance(self.client_pause_prob) {
                        interval += SimDuration::from_secs_f64(
                            self.app_rng.exponential(self.client_pause.as_secs_f64()),
                        );
                    }
                    self.q.push(now + interval, Ev::ClientRead);
                } else {
                    self.read_pending = false;
                }
                self.check_client_progress(now);
            }
        }
    }

    // --------------------------------------------------------- handshake

    fn send_syn(&mut self, now: SimTime, attempt: u32) {
        let syn = Segment {
            seq: 0,
            len: 0,
            flags: SegFlags::SYN,
            ack: 0,
            rwnd: self.client.rx.rwnd(),
            sack: SackList::new(),
            dsack: false,
            probe: false,
        };
        let mut out = std::mem::take(&mut self.seg_buf);
        out.push(syn);
        self.client_send(now, &mut out);
        self.seg_buf = out;
        self.q.push(
            now + self.syn_timeout.saturating_mul(1 << attempt),
            Ev::SynRetrans(attempt + 1),
        );
    }

    fn send_synack(&mut self, now: SimTime, attempt: u32) {
        self.synack_sent_at = Some(now);
        let synack = Segment {
            seq: 0,
            len: 0,
            flags: SegFlags::SYN_ACK,
            ack: 0,
            rwnd: self.server.rx.rwnd(),
            sack: SackList::new(),
            dsack: false,
            probe: false,
        };
        let mut out = std::mem::take(&mut self.seg_buf);
        out.push(synack);
        self.server_send(now, &mut out);
        self.seg_buf = out;
        self.q.push(
            now + self.syn_timeout.saturating_mul(1 << attempt),
            Ev::SynAckRetrans(attempt + 1),
        );
    }

    // ------------------------------------------------------ packet paths

    fn server_send(&mut self, now: SimTime, segs: &mut Vec<Segment>) {
        for seg in segs.drain(..) {
            self.trace.record(&seg_to_record(now, Direction::Out, &seg));
            match self.s2c.offer(now, seg.wire_len()) {
                Delivery::Arrive(at) => self.q.push(at, Ev::ToClient(seg)),
                Delivery::Drop(_) => {
                    if let Some(o) = &mut self.oracle {
                        if seg.len > 0 {
                            o.events.push(CauseEvent::at(
                                now,
                                CauseKind::LinkDropData {
                                    seq: seg.seq,
                                    len: seg.len as u64,
                                },
                            ));
                            o.dropped_data.push((now, seg.seq, seg.len as u64));
                        } else {
                            // A dropped server-side pure ACK / SYN-ACK still
                            // delays the peer the same way a lost client ACK
                            // does.
                            o.events.push(CauseEvent::at(now, CauseKind::LinkDropAck));
                        }
                    }
                }
            }
            if let Some(o) = &mut self.oracle {
                note_burst(&mut o.events, &mut o.last_burst_s2c, &self.s2c, now);
            }
        }
        self.resched_tick(now, /*server=*/ true);
    }

    fn client_send(&mut self, now: SimTime, segs: &mut Vec<Segment>) {
        for seg in segs.drain(..) {
            if let Some(o) = &mut self.oracle {
                // Zero-window tracking: the client's advertised window is
                // carried on every non-SYN segment it sends. A zero
                // advertisement opens (or extends) a ZeroWindow interval; the
                // first nonzero advertisement closes it.
                if !seg.flags.syn {
                    if seg.rwnd == 0 {
                        match o.zero_rwnd_event {
                            Some(i) => o.events[i].end = now,
                            None => {
                                o.events.push(CauseEvent::at(now, CauseKind::ZeroWindow));
                                o.zero_rwnd_event = Some(o.events.len() - 1);
                            }
                        }
                    } else if let Some(i) = o.zero_rwnd_event.take() {
                        o.events[i].end = now;
                    }
                }
            }
            match self.c2s.offer(now, seg.wire_len()) {
                Delivery::Arrive(at) => self.q.push(at, Ev::ToServer(seg)),
                Delivery::Drop(_) => {
                    if let Some(o) = &mut self.oracle {
                        o.events.push(CauseEvent::at(now, CauseKind::LinkDropAck));
                    }
                }
            }
            if let Some(o) = &mut self.oracle {
                note_burst(&mut o.events, &mut o.last_burst_c2s, &self.c2s, now);
            }
        }
        self.resched_tick(now, /*server=*/ false);
    }

    fn server_receive(&mut self, now: SimTime, seg: Segment) {
        self.trace.record(&seg_to_record(now, Direction::In, &seg));
        if seg.flags.syn && !seg.flags.ack {
            if !self.established_server {
                self.server.tx.set_peer_rwnd(seg.rwnd);
                self.send_synack(now, 0);
            }
            return;
        }
        if !self.established_server {
            self.established_server = true;
            // Seed the server's RTT estimator from the handshake round trip,
            // as the kernel does (SYN-ACK → completing ACK).
            if let Some(sa) = self.synack_sent_at {
                if !self.rtt_seeded {
                    let sample = now.saturating_since(sa);
                    if !sample.is_zero() {
                        self.server.tx.seed_rtt(sample);
                        self.rtt_seeded = true;
                    }
                }
            }
        }
        let mut out = std::mem::take(&mut self.seg_buf);
        self.server.on_segment(now, &seg, &mut out);
        // The server application reads requests immediately.
        let buffered = self.server.rx.buffered();
        if buffered > 0 {
            self.server.app_read(now, buffered, &mut out);
        }
        self.server_send(now, &mut out);
        self.seg_buf = out;
        self.check_new_requests(now);
        self.check_response_completion(now);
    }

    fn client_receive(&mut self, now: SimTime, seg: Segment) {
        if seg.flags.syn && seg.flags.ack {
            if !self.established_client {
                self.established_client = true;
                self.established_at = Some(now);
                self.client.tx.set_peer_rwnd(seg.rwnd);
                // Complete the handshake.
                let ack = Segment::pure_ack(0, self.client.rx.rwnd());
                let mut out = std::mem::take(&mut self.seg_buf);
                out.push(ack);
                self.client_send(now, &mut out);
                self.seg_buf = out;
                if let Some(first) = self.requests.first() {
                    if let Some(o) = &mut self.oracle {
                        if !first.think_time.is_zero() {
                            o.events.push(CauseEvent::span(
                                now,
                                now + first.think_time,
                                CauseKind::ClientIdle,
                            ));
                        }
                    }
                    self.q.push(now + first.think_time, Ev::IssueRequest(0));
                }
            }
            return;
        }
        let mut out = std::mem::take(&mut self.seg_buf);
        self.client.on_segment(now, &seg, &mut out);
        self.client_send(now, &mut out);
        self.seg_buf = out;
        self.client_drain_tick(now);
        self.check_client_progress(now);
    }

    // ------------------------------------------------------- application

    fn issue_request(&mut self, now: SimTime, i: usize) {
        let spec = self.requests[i];
        self.issue_times[i] = Some(now);
        self.client.tx.app_write(spec.request_bytes as u64);
        let mut out = std::mem::take(&mut self.seg_buf);
        self.client.poll(now, &mut out);
        self.client_send(now, &mut out);
        self.seg_buf = out;
    }

    /// Queue server-side supply events once a request has fully arrived.
    fn check_new_requests(&mut self, now: SimTime) {
        while self.next_request_seen < self.request_boundary_in.len()
            && self.server.rx.stats().bytes_delivered
                >= self.request_boundary_in[self.next_request_seen]
        {
            let i = self.next_request_seen;
            self.next_request_seen += 1;
            let spec = self.requests[i];
            let last_request = i + 1 == self.requests.len();
            match spec.supply {
                None => {
                    self.supplies.push_back(Supply {
                        delay: spec.backend_delay,
                        bytes: spec.response_bytes,
                        close: last_request,
                        first: true,
                    });
                }
                Some(p) => {
                    let chunk = p.chunk_bytes.max(1);
                    let mut remaining = spec.response_bytes;
                    let mut first = true;
                    while remaining > 0 {
                        let b = remaining.min(chunk);
                        remaining -= b;
                        let delay = if first { spec.backend_delay } else { p.gap };
                        self.supplies.push_back(Supply {
                            delay,
                            bytes: b,
                            close: last_request && remaining == 0,
                            first,
                        });
                        first = false;
                    }
                }
            }
            self.pump_supply(now);
        }
    }

    fn pump_supply(&mut self, now: SimTime) {
        if self.supply_active {
            return;
        }
        if let Some(Supply {
            delay,
            bytes,
            close,
            first,
        }) = self.supplies.pop_front()
        {
            self.supply_active = true;
            if let Some(o) = &mut self.oracle {
                if !delay.is_zero() {
                    // The server application cannot produce data during
                    // [now, now+delay]: a backend fetch before a response's
                    // first byte, or a rate-limit gap between chunks.
                    let kind = if first {
                        CauseKind::DataUnavailable
                    } else {
                        CauseKind::ResourceConstraint
                    };
                    o.events.push(CauseEvent::span(now, now + delay, kind));
                }
            }
            self.q.push(now + delay, Ev::Supply { bytes, close });
        }
    }

    /// Latency bookkeeping: a request is complete when the server has seen
    /// every response byte cumulatively ACKed. Requests complete strictly
    /// in order (boundaries and `snd_una` are monotone, and request `i+1`
    /// is never issued before `i`), so the scan resumes at the first
    /// unresolved request and stops at the first it can't resolve.
    fn check_response_completion(&mut self, now: SimTime) {
        let una = self.server.tx.scoreboard().snd_una();
        let mut i = self.next_resp_done;
        while i < self.latencies.len() {
            if self.latencies[i].is_some() {
                i += 1;
                continue;
            }
            if una < self.response_boundary_out[i] {
                break;
            }
            match self.issue_times[i] {
                Some(t0) => {
                    self.latencies[i] = Some(now.saturating_since(t0));
                    self.pending_latencies -= 1;
                    i += 1;
                }
                None => break,
            }
        }
        self.next_resp_done = i;
    }

    /// Client-side progress: when a response has fully arrived, schedule the
    /// next request after its think time. `rcv_nxt` is monotone and requests
    /// are issued strictly in order, so a response index is fully handled
    /// once its successor is scheduled — the scan resumes past it and stops
    /// at the first index it can't yet act on.
    fn check_client_progress(&mut self, now: SimTime) {
        let got = self.client.rx.rcv_nxt();
        let mut i = self.next_progress;
        while i < self.response_boundary_out.len() && got >= self.response_boundary_out[i] {
            let next = i + 1;
            if next >= self.requests.len() || self.issue_times[next].is_some() {
                i = next;
                continue;
            }
            if self.issue_times[i].is_none() {
                break;
            }
            // Mark as scheduled so we don't double-issue.
            self.issue_times[next] = Some(SimTime::MAX);
            let think = self.requests[next].think_time;
            if let Some(o) = &mut self.oracle {
                if !think.is_zero() {
                    o.events
                        .push(CauseEvent::span(now, now + think, CauseKind::ClientIdle));
                }
            }
            self.q.push(now + think, Ev::IssueRequest(next));
            i = next;
        }
        self.next_progress = i;
    }

    fn client_drain_tick(&mut self, now: SimTime) {
        match self.client_drain {
            None => {
                let buffered = self.client.rx.buffered();
                if buffered > 0 {
                    let mut out = std::mem::take(&mut self.seg_buf);
                    self.client.app_read(now, buffered, &mut out);
                    self.client_send(now, &mut out);
                    self.seg_buf = out;
                }
            }
            Some(rate) => {
                // Start the rate-limited read loop; the reads themselves
                // happen on ClientRead events.
                if self.read_pending || self.client.rx.buffered() == 0 {
                    return;
                }
                let chunk = self.client.rx.config().mss as u64;
                let interval = SimDuration::from_secs_f64(chunk as f64 / rate.max(1) as f64);
                self.read_pending = true;
                self.q.push(now + interval, Ev::ClientRead);
            }
        }
    }

    // ------------------------------------------------------------- oracle

    /// Capture the server sender's state the instant before a tick, as the
    /// ground truth behind a possible RTO firing — everything the Table-5
    /// retransmission subclassification needs. Pure observation: reads the
    /// scoreboard and the oracle's own bookkeeping, mutates nothing.
    fn server_rto_context(&self) -> Option<RtoContext> {
        let o = self.oracle.as_ref()?;
        let tx = &self.server.tx;
        let sb = tx.scoreboard();
        let head = sb.head()?;
        let head_end = head.seq_end();
        // Dropped-by-the-link check: any recorded data drop at or after the
        // head's (re)transmission that overlaps the head's byte range.
        let head_dropped = o
            .dropped_data
            .iter()
            .any(|&(t, seq, len)| t >= head.first_tx && seq < head_end && seq + len > head.seq);
        Some(RtoContext {
            head_seq: head.seq,
            head_len: head.len as u64,
            head_retransmitted: head.retrans_count >= 1,
            first_retrans_fast: head.first_retrans_fast == Some(true),
            head_is_tail: sb.snd_nxt() >= o.supplied,
            packets_out: sb.packets_out() as u64,
            rwnd_limited: sb.snd_nxt().saturating_sub(sb.snd_una()) >= tx.peer_rwnd(),
            head_dropped,
        })
    }

    // ------------------------------------------------------------ timers

    /// Re-arm the host's tick after a state change. Scheduling is
    /// *suppressed* when a tick at or before the wanted time is already
    /// pending for this host: that earlier tick will run `on_tick` (a no-op
    /// if its deadline moved) and re-arm from there, so every armed
    /// deadline is still reached — without flooding the queue with one
    /// duplicate tick per ACK as deadlines slide forward.
    fn resched_tick(&mut self, now: SimTime, server: bool) {
        let deadline = if server {
            self.server.next_deadline()
        } else {
            self.client.next_deadline()
        };
        if let Some(d) = deadline {
            let at = d.max(now);
            let ticks = if server {
                &mut self.server_ticks
            } else {
                &mut self.client_ticks
            };
            if ticks
                .peek()
                .is_some_and(|&std::cmp::Reverse(pending)| pending <= at)
            {
                return;
            }
            ticks.push(std::cmp::Reverse(at));
            self.q.push(
                at,
                if server {
                    Ev::TickServer
                } else {
                    Ev::TickClient
                },
            );
        }
    }
}

/// Record the link's currently active delay burst as a [`CauseKind::DelayBurst`]
/// interval event, once per burst (deduped by burst start). Read-only with
/// respect to the link: [`Link::current_burst`] never advances the burst
/// schedule or consumes randomness.
fn note_burst(events: &mut Vec<CauseEvent>, last: &mut Option<SimTime>, link: &Link, now: SimTime) {
    if let Some((start, end)) = link.current_burst() {
        if start <= now && now <= end && *last != Some(start) {
            *last = Some(start);
            events.push(CauseEvent::span(start, end, CauseKind::DelayBurst));
        }
    }
}

fn seg_to_record(t: SimTime, dir: Direction, seg: &Segment) -> TraceRecord {
    TraceRecord {
        t,
        dir,
        seq: seg.seq,
        len: seg.len,
        flags: seg.flags,
        ack: seg.ack,
        rwnd: seg.rwnd,
        sack: seg.sack,
        dsack: seg.dsack,
    }
}

/// Issue-time sentinel cleanup is internal; outcomes report `SimDuration::MAX`
/// for requests that never completed.
#[cfg(test)]
mod tests {
    use super::*;
    use simnet::loss::LossSpec;

    fn base_cfg(resp: u64) -> FlowSimConfig {
        FlowSimConfig {
            script: FlowScript::single(resp),
            c2s: LinkConfig {
                prop_delay: SimDuration::from_millis(50),
                ..LinkConfig::default()
            },
            s2c: LinkConfig {
                prop_delay: SimDuration::from_millis(50),
                ..LinkConfig::default()
            },
            ..FlowSimConfig::default()
        }
    }

    #[test]
    fn lossless_flow_completes_with_clean_trace() {
        let out = FlowSim::new(base_cfg(50_000), 1).run();
        assert!(out.established);
        assert!(out.completed);
        assert_eq!(out.server_stats.retrans_segs, 0);
        assert_eq!(out.server_stats.rto_count, 0);
        // Trace contains the SYN, the SYN-ACK and data both ways.
        let recs = &out.trace.records;
        assert!(recs
            .iter()
            .any(|r| r.flags.syn && !r.flags.ack && r.dir == Direction::In));
        assert!(recs
            .iter()
            .any(|r| r.flags.syn && r.flags.ack && r.dir == Direction::Out));
        assert_eq!(out.trace.goodput_bytes_out(), 50_000);
        // Latency ≈ 1 RTT handshake-to-request + transfer time; just sanity.
        assert!(out.request_latencies[0] < SimDuration::from_secs(5));
    }

    #[test]
    fn flow_with_loss_still_completes() {
        let mut cfg = base_cfg(200_000);
        cfg.s2c.loss = LossSpec::bernoulli(0.06);
        cfg.c2s.loss = LossSpec::bernoulli(0.02);
        let out = FlowSim::new(cfg, 7).run();
        assert!(out.completed, "flow must recover from losses");
        assert!(out.server_stats.retrans_segs > 0);
        assert_eq!(out.trace.goodput_bytes_out(), 200_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = FlowSim::new(base_cfg(100_000), 42).run();
        let b = FlowSim::new(base_cfg(100_000), 42).run();
        assert_eq!(a.trace.records, b.trace.records);
        assert_eq!(a.request_latencies, b.request_latencies);
        let mut cfg = base_cfg(100_000);
        cfg.s2c.loss = LossSpec::bernoulli(0.05);
        let c = FlowSim::new(cfg.clone(), 42).run();
        let d = FlowSim::new(cfg, 42).run();
        assert_eq!(c.trace.records, d.trace.records);
    }

    #[test]
    fn streaming_run_matches_materialized_trace() {
        // The streaming path must feed the sink exactly the records the
        // materializing path stores, and leave the outcome's trace empty.
        let materialized = FlowSim::new(base_cfg(100_000), 11).run();
        let (out, sink) =
            FlowSim::with_sink(base_cfg(100_000), 11, FlowTrace::default()).run_streaming();
        assert!(out.trace.records.is_empty());
        assert_eq!(sink.records, materialized.trace.records);
        assert_eq!(out.request_latencies, materialized.request_latencies);
        assert_eq!(out.server_stats, materialized.server_stats);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_state() {
        // One FlowScratch recycled across dissimilar flows (lossless, lossy,
        // multi-request) must reproduce the fresh-construction path exactly:
        // same traces, same latencies, same stats.
        let mut lossy = base_cfg(200_000);
        lossy.s2c.loss = LossSpec::bernoulli(0.06);
        let mut multi = base_cfg(0);
        multi.script = FlowScript {
            requests: vec![
                RequestSpec::simple(20_000),
                RequestSpec {
                    think_time: SimDuration::from_secs(1),
                    ..RequestSpec::simple(40_000)
                },
            ],
        };
        let cases: Vec<(FlowSimConfig, u64)> = vec![
            (base_cfg(50_000), 1),
            (lossy, 7),
            (multi, 3),
            (base_cfg(1_000), 9),
            (base_cfg(50_000), 1), // repeat: scratch sized by a previous flow
        ];
        let mut scratch = FlowScratch::new();
        for (cfg, seed) in cases {
            let fresh = FlowSim::new(cfg.clone(), seed).run();
            let key = FlowKey::synthetic(cfg.flow_id);
            let (mut out, trace) =
                FlowSim::with_sink_scratch(cfg, seed, FlowTrace::new(key), &mut scratch)
                    .run_streaming_into(&mut scratch);
            out.trace = trace;
            assert_eq!(out.trace.records, fresh.trace.records);
            assert_eq!(out.request_latencies, fresh.request_latencies);
            assert_eq!(out.server_stats, fresh.server_stats);
            assert_eq!(out.established_at, fresh.established_at);
            assert_eq!(out.finished_at, fresh.finished_at);
        }
    }

    #[test]
    fn multi_request_flow_has_client_idle_gaps() {
        let mut cfg = base_cfg(0);
        cfg.script = FlowScript {
            requests: vec![
                RequestSpec::simple(20_000),
                RequestSpec {
                    think_time: SimDuration::from_secs(2),
                    ..RequestSpec::simple(20_000)
                },
            ],
        };
        let out = FlowSim::new(cfg, 3).run();
        assert!(out.completed);
        assert_eq!(out.request_latencies.len(), 2);
        // The trace must span at least the 2s think time.
        assert!(out.trace.duration() >= SimDuration::from_secs(2));
    }

    #[test]
    fn backend_delay_stalls_head_of_response() {
        let mut cfg = base_cfg(0);
        cfg.script.requests = vec![RequestSpec {
            backend_delay: SimDuration::from_millis(800),
            ..RequestSpec::simple(20_000)
        }];
        let out = FlowSim::new(cfg, 4).run();
        assert!(out.completed);
        // First outbound data appears ≥ 800ms after the request arrived.
        let req_t = out
            .trace
            .records
            .iter()
            .find(|r| r.dir == Direction::In && r.has_data())
            .unwrap()
            .t;
        let first_data_t = out
            .trace
            .records
            .iter()
            .find(|r| r.dir == Direction::Out && r.has_data())
            .unwrap()
            .t;
        assert!(first_data_t.saturating_since(req_t) >= SimDuration::from_millis(800));
    }

    #[test]
    fn slow_client_drain_produces_zero_window() {
        // A 4096-byte client buffer (the paper's "2 MSS" old-software
        // clients, Fig. 6) with a slow application drain must produce
        // genuine zero-window advertisements.
        let mut cfg = base_cfg(100_000);
        cfg.client_rx.buf_bytes = 4096;
        cfg.client_drain = Some(20_000); // 20 KB/s against a fast sender
        cfg.max_time = SimDuration::from_secs(300);
        let out = FlowSim::new(cfg, 5).run();
        assert!(out.completed);
        assert!(out
            .trace
            .records
            .iter()
            .any(|r| r.dir == Direction::In && r.flags.ack && !r.flags.syn && r.rwnd == 0));
    }

    #[test]
    fn syn_loss_is_retransmitted_after_timeout() {
        let mut cfg = base_cfg(10_000);
        cfg.c2s.loss = LossSpec::Script { drops: vec![0] }; // drop the first SYN
        let out = FlowSim::new(cfg, 6).run();
        assert!(out.established);
        assert!(out.completed);
        assert!(out.established_at.unwrap() >= SimTime::from_secs(3));
    }

    #[test]
    fn oracle_is_a_pure_side_channel() {
        // The ground-truth oracle must not perturb packet-visible output:
        // same config, same seed, with and without the oracle → identical
        // traces and outcomes, on a config exercising loss, delay bursts,
        // think time, backend delay, chunked supply and slow client drain.
        let mut cfg = base_cfg(0);
        cfg.script = FlowScript {
            requests: vec![
                RequestSpec {
                    backend_delay: SimDuration::from_millis(600),
                    ..RequestSpec::simple(60_000)
                },
                RequestSpec {
                    think_time: SimDuration::from_secs(1),
                    supply: Some(SupplyPauses {
                        chunk_bytes: 20_000,
                        gap: SimDuration::from_millis(400),
                    }),
                    ..RequestSpec::simple(60_000)
                },
            ],
        };
        cfg.s2c.loss = LossSpec::bernoulli(0.04);
        cfg.c2s.loss = LossSpec::bernoulli(0.02);
        cfg.s2c.delay_burst_hz = 0.5;
        cfg.s2c.delay_burst_len = SimDuration::from_millis(400);
        cfg.s2c.delay_burst_extra = SimDuration::from_millis(300);
        cfg.client_drain = Some(400_000);
        for seed in [3u64, 17, 90] {
            let plain = FlowSim::new(cfg.clone(), seed).run();
            let traced = FlowSim::new(cfg.clone(), seed).with_oracle().run();
            assert_eq!(plain.trace.records, traced.trace.records);
            assert_eq!(plain.request_latencies, traced.request_latencies);
            assert_eq!(plain.server_stats, traced.server_stats);
            assert_eq!(plain.finished_at, traced.finished_at);
            assert_eq!(plain.s2c_stats, traced.s2c_stats);
            assert!(plain.oracle.is_empty(), "oracle off ⇒ no events");
            assert!(!traced.oracle.is_empty(), "oracle on ⇒ labelled events");
            // Events are well-formed intervals.
            for ev in &traced.oracle {
                assert!(ev.start <= ev.end, "bad interval {ev:?}");
            }
        }
    }

    #[test]
    fn oracle_labels_match_scripted_causes() {
        // Each scripted behaviour must surface as its cause kind.
        let mut cfg = base_cfg(0);
        cfg.script = FlowScript {
            requests: vec![
                RequestSpec {
                    backend_delay: SimDuration::from_millis(800),
                    ..RequestSpec::simple(20_000)
                },
                RequestSpec {
                    think_time: SimDuration::from_secs(2),
                    supply: Some(SupplyPauses {
                        chunk_bytes: 10_000,
                        gap: SimDuration::from_millis(500),
                    }),
                    ..RequestSpec::simple(30_000)
                },
            ],
        };
        let out = FlowSim::new(cfg, 4).with_oracle().run();
        assert!(out.completed);
        let has = |pred: &dyn Fn(&CauseKind) -> bool| out.oracle.iter().any(|e| pred(&e.kind));
        assert!(has(&|k| matches!(k, CauseKind::DataUnavailable)));
        assert!(has(&|k| matches!(k, CauseKind::ResourceConstraint)));
        assert!(has(&|k| matches!(k, CauseKind::ClientIdle)));
        // Lossless script ⇒ no drop or timer events.
        assert!(!has(&|k| matches!(
            k,
            CauseKind::LinkDropData { .. } | CauseKind::LinkDropAck | CauseKind::RtoFired(_)
        )));

        // Zero-window behaviour from a tiny client buffer + slow drain.
        let mut zcfg = base_cfg(100_000);
        zcfg.client_rx.buf_bytes = 4096;
        zcfg.client_drain = Some(20_000);
        let zout = FlowSim::new(zcfg, 5).with_oracle().run();
        assert!(zout
            .oracle
            .iter()
            .any(|e| matches!(e.kind, CauseKind::ZeroWindow)));

        // Heavy data-direction loss ⇒ drop labels, and RTO firings carry a
        // context whose head really was dropped at least once.
        let mut lcfg = base_cfg(200_000);
        lcfg.s2c.loss = LossSpec::bernoulli(0.08);
        let lout = FlowSim::new(lcfg, 7).with_oracle().run();
        assert!(lout
            .oracle
            .iter()
            .any(|e| matches!(e.kind, CauseKind::LinkDropData { .. })));
        if lout.server_stats.rto_count > 0 {
            assert!(lout
                .oracle
                .iter()
                .any(|e| matches!(e.kind, CauseKind::RtoFired(_))));
        }
    }

    #[test]
    fn small_init_rwnd_is_advertised_in_syn() {
        let mut cfg = base_cfg(30_000);
        cfg.client_rx.buf_bytes = 4096;
        cfg.max_time = SimDuration::from_secs(120);
        let out = FlowSim::new(cfg, 8).run();
        let syn = out
            .trace
            .records
            .iter()
            .find(|r| r.flags.syn && !r.flags.ack)
            .unwrap();
        assert_eq!(syn.rwnd, 4096);
        assert!(out.completed);
    }
}

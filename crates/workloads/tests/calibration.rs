//! Calibration guards: if a future change drifts the service models away
//! from the paper's published statistics, these tests fail before the
//! experiment tables silently change shape.

use tapo::{analyze_flow, AnalyzerConfig};
use tcp_sim::recovery::RecoveryMechanism;
use workloads::{synthesize_corpus, Service};

struct CorpusStats {
    mean_size: f64,
    mean_rtt_ms: f64,
    retrans_ratio: f64,
    completion: f64,
    stalled_any: f64,
}

fn stats(service: Service, n: usize, seed: u64) -> CorpusStats {
    let corpus = synthesize_corpus(service, n, RecoveryMechanism::Native, seed);
    let cfg = AnalyzerConfig::default();
    let mut size = 0.0;
    let mut rtt = 0.0;
    let mut rtt_n = 0.0f64;
    let mut stalled = 0.0;
    for f in &corpus.flows {
        size += f.response_bytes as f64;
        let a = analyze_flow(&f.trace, cfg);
        if let Some(r) = a.metrics.mean_rtt {
            rtt += r.as_secs_f64() * 1e3;
            rtt_n += 1.0;
        }
        if !a.stalls.is_empty() {
            stalled += 1.0;
        }
    }
    CorpusStats {
        mean_size: size / n as f64,
        mean_rtt_ms: rtt / rtt_n.max(1.0),
        retrans_ratio: corpus.retrans_ratio(),
        completion: corpus.completion_rate(),
        stalled_any: stalled / n as f64,
    }
}

#[test]
fn cloud_storage_calibration() {
    let s = stats(Service::CloudStorage, 80, 2015);
    // Paper targets: 1.7MB, 143ms, 3.9% loss.
    assert!(
        (0.6e6..3.0e6).contains(&s.mean_size),
        "size {}",
        s.mean_size
    );
    assert!(
        (100.0..260.0).contains(&s.mean_rtt_ms),
        "rtt {}",
        s.mean_rtt_ms
    );
    assert!(
        (0.015..0.10).contains(&s.retrans_ratio),
        "retrans {}",
        s.retrans_ratio
    );
    assert!(s.completion > 0.9, "completion {}", s.completion);
    assert!(
        (0.25..0.85).contains(&s.stalled_any),
        "stalled share {}",
        s.stalled_any
    );
}

#[test]
fn software_download_calibration() {
    let s = stats(Service::SoftwareDownload, 120, 2015);
    // Paper targets: 129KB, 147ms, 4.1% loss.
    assert!((60e3..260e3).contains(&s.mean_size), "size {}", s.mean_size);
    assert!(
        (90.0..220.0).contains(&s.mean_rtt_ms),
        "rtt {}",
        s.mean_rtt_ms
    );
    assert!(
        (0.01..0.09).contains(&s.retrans_ratio),
        "retrans {}",
        s.retrans_ratio
    );
    assert!(s.completion > 0.9, "completion {}", s.completion);
}

#[test]
fn web_search_calibration() {
    let s = stats(Service::WebSearch, 200, 2015);
    // Paper targets: 14KB, 106ms, 2.1% loss.
    assert!((6e3..30e3).contains(&s.mean_size), "size {}", s.mean_size);
    assert!(
        (60.0..160.0).contains(&s.mean_rtt_ms),
        "rtt {}",
        s.mean_rtt_ms
    );
    assert!(s.retrans_ratio < 0.06, "retrans {}", s.retrans_ratio);
    assert!(s.completion > 0.95, "completion {}", s.completion);
}

#[test]
fn service_size_ordering_matches_table1() {
    let cloud = stats(Service::CloudStorage, 50, 7).mean_size;
    let soft = stats(Service::SoftwareDownload, 50, 7).mean_size;
    let web = stats(Service::WebSearch, 50, 7).mean_size;
    assert!(
        cloud > soft && soft > web,
        "cloud {cloud} > soft {soft} > web {web}"
    );
}

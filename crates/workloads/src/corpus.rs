//! Corpus synthesis: the simulated stand-in for the paper's 7-day,
//! 6.4M-flow production dataset.
//!
//! A corpus is a set of per-flow outcomes (server-side traces plus
//! simulation ground truth) for one service. For mechanism comparisons
//! (Tables 8 & 9) the same sampled flow population can be replayed under
//! each recovery mechanism with identical per-flow seeds, giving a paired
//! experiment that is *stronger* than the paper's round-robin A/B.

use simnet::rng::{splitmix64, SimRng};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_sim::sim::FlowOutcome;

use crate::service::{Service, ServiceModel};
use crate::spec::{simulate_flow, FlowSpec, PathSpec};

/// A synthesized set of flows for one service.
#[derive(Debug)]
pub struct Corpus {
    /// The service modelled.
    pub service: Service,
    /// Per-flow outcomes, in generation order.
    pub flows: Vec<FlowOutcome>,
}

/// Derive flow `index`'s sampling seed from `(master_seed, service, index)`.
///
/// A pure function of its three inputs, so *which thread* samples a flow —
/// and in what order — cannot change any flow's draws. This is the
/// determinism contract of the parallel flow engine: flow `i` of service `s`
/// under master seed `m` always sees the same RNG stream.
pub fn flow_seed(master_seed: u64, service: Service, index: usize) -> u64 {
    let mut s = splitmix64(master_seed ^ 0x5eed_0000);
    s = splitmix64(s ^ (service as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(s ^ index as u64)
}

/// Sample flow `index` of a service's population — the single-flow unit the
/// parallel engine shards over. `model` must be
/// [`ServiceModel::calibrated`] for the same service (passed in so callers
/// can amortize its construction across flows).
pub fn sample_flow(model: &ServiceModel, master_seed: u64, index: usize) -> (FlowSpec, PathSpec) {
    let mut rng = SimRng::seed(flow_seed(master_seed, model.service, index));
    model.sample(&mut rng)
}

/// Sample `n` flow populations (spec + path) for a service without running
/// them — the raw material for paired mechanism comparisons. Each flow is
/// drawn from its own [`flow_seed`]-derived stream.
pub fn sample_population(service: Service, n: usize, seed: u64) -> Vec<(FlowSpec, PathSpec)> {
    let model = ServiceModel::calibrated(service);
    (0..n).map(|i| sample_flow(&model, seed, i)).collect()
}

/// Run a previously sampled population under one recovery mechanism.
/// Flow `i` always gets seed `base_seed + i`, so runs under different
/// mechanisms are paired.
pub fn run_population(
    service: Service,
    population: &[(FlowSpec, PathSpec)],
    mechanism: RecoveryMechanism,
    base_seed: u64,
) -> Corpus {
    let flows = population
        .iter()
        .enumerate()
        .map(|(i, (spec, path))| simulate_flow(spec, path, mechanism, base_seed + i as u64))
        .collect();
    Corpus { service, flows }
}

/// Convenience: sample and run `n` flows under `mechanism`.
pub fn synthesize_corpus(
    service: Service,
    n: usize,
    mechanism: RecoveryMechanism,
    seed: u64,
) -> Corpus {
    let population = sample_population(service, n, seed);
    run_population(service, &population, mechanism, seed)
}

impl Corpus {
    /// Total response bytes across all flows.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.response_bytes).sum()
    }

    /// Fraction of flows that completed before the cut-off.
    pub fn completion_rate(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        self.flows.iter().filter(|f| f.completed).count() as f64 / self.flows.len() as f64
    }

    /// Overall retransmitted-to-sent data-packet ratio (Table 9).
    pub fn retrans_ratio(&self) -> f64 {
        let (retrans, sent) = self.flows.iter().fold((0u64, 0u64), |(r, s), f| {
            (
                r + f.server_stats.retrans_segs,
                s + f.server_stats.data_segs_sent + f.server_stats.retrans_segs,
            )
        });
        if sent == 0 {
            0.0
        } else {
            retrans as f64 / sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = synthesize_corpus(Service::WebSearch, 10, RecoveryMechanism::Native, 1);
        let b = synthesize_corpus(Service::WebSearch, 10, RecoveryMechanism::Native, 1);
        assert_eq!(a.flows.len(), 10);
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(x.trace.records, y.trace.records);
        }
    }

    #[test]
    fn corpus_mostly_completes() {
        let c = synthesize_corpus(Service::WebSearch, 30, RecoveryMechanism::Native, 2);
        assert!(
            c.completion_rate() > 0.9,
            "completion {}",
            c.completion_rate()
        );
        assert!(c.total_bytes() > 0);
    }

    #[test]
    fn paired_populations_share_specs() {
        let pop = sample_population(Service::WebSearch, 5, 3);
        let native = run_population(Service::WebSearch, &pop, RecoveryMechanism::Native, 3);
        let srto = run_population(
            Service::WebSearch,
            &pop,
            RecoveryMechanism::Srto(Service::WebSearch.srto_config()),
            3,
        );
        assert_eq!(native.flows.len(), srto.flows.len());
        // Same total offered bytes (the populations are identical).
        assert_eq!(native.total_bytes(), srto.total_bytes());
    }

    #[test]
    fn lossy_corpus_has_retransmissions() {
        let c = synthesize_corpus(Service::SoftwareDownload, 20, RecoveryMechanism::Native, 4);
        assert!(c.retrans_ratio() > 0.005, "ratio {}", c.retrans_ratio());
    }
}

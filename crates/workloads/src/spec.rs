//! Path and flow specifications: the building blocks a single simulated
//! flow is assembled from.

use simnet::link::LinkConfig;
use simnet::loss::LossSpec;
use simnet::time::SimDuration;
use tcp_sim::cc::CcKind;
use tcp_sim::receiver::ReceiverConfig;
use tcp_sim::recovery::RecoveryMechanism;
use tcp_sim::sender::SenderConfig;
use tcp_sim::sim::{FlowOutcome, FlowScratch, FlowScript, FlowSim, FlowSimConfig};
use tcp_trace::flow::{FlowKey, FlowTrace};
use tcp_trace::record::RecordSink;

/// A network path between client and server.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSpec {
    /// Base round-trip propagation delay (split evenly between directions).
    pub rtt: SimDuration,
    /// Maximum per-packet jitter, per direction.
    pub jitter: SimDuration,
    /// Loss process on the data (server→client) direction.
    pub loss: LossSpec,
    /// Loss process on the ACK (client→server) direction; defaults to a
    /// lighter Bernoulli process when `None`.
    pub ack_loss: Option<LossSpec>,
    /// Bottleneck bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Drop-tail queue size in packets.
    pub queue_pkts: usize,
    /// Probability that a packet is reordered (held back).
    pub reorder_prob: f64,
    /// Extra delay applied to reordered packets.
    pub reorder_extra: SimDuration,
    /// Rate of path-wide delay bursts (per second); see
    /// [`simnet::link::LinkConfig::delay_burst_hz`].
    pub delay_burst_hz: f64,
    /// Mean delay-burst duration.
    pub delay_burst_len: SimDuration,
    /// Extra one-way delay during a burst.
    pub delay_burst_extra: SimDuration,
}

impl Default for PathSpec {
    fn default() -> Self {
        PathSpec {
            rtt: SimDuration::from_millis(100),
            jitter: SimDuration::from_millis(5),
            loss: LossSpec::None,
            ack_loss: None,
            bandwidth_bps: 50_000_000,
            queue_pkts: 128,
            reorder_prob: 0.0,
            reorder_extra: SimDuration::from_millis(20),
            delay_burst_hz: 0.0,
            delay_burst_len: SimDuration::from_millis(300),
            delay_burst_extra: SimDuration::from_millis(400),
        }
    }
}

impl PathSpec {
    /// Build the two directional link configurations.
    pub fn links(&self) -> (LinkConfig, LinkConfig) {
        let one_way = self.rtt / 2;
        let c2s = LinkConfig {
            bandwidth_bps: self.bandwidth_bps,
            prop_delay: one_way,
            jitter: self.jitter,
            queue_pkts: self.queue_pkts,
            loss: self.ack_loss.clone().unwrap_or_else(|| match &self.loss {
                LossSpec::None => LossSpec::None,
                // ACK paths see milder, less bursty loss.
                other => LossSpec::Bernoulli {
                    p: other.mean_loss() / 3.0,
                },
            }),
            // Delay spikes hit ACKs too (delayed-ACK-path stalls).
            reorder_prob: self.reorder_prob,
            reorder_extra: self.reorder_extra,
            delay_burst_hz: self.delay_burst_hz,
            delay_burst_len: self.delay_burst_len,
            delay_burst_extra: self.delay_burst_extra,
        };
        let s2c = LinkConfig {
            bandwidth_bps: self.bandwidth_bps,
            prop_delay: one_way,
            jitter: self.jitter,
            queue_pkts: self.queue_pkts,
            loss: self.loss.clone(),
            reorder_prob: self.reorder_prob,
            reorder_extra: self.reorder_extra,
            delay_burst_hz: self.delay_burst_hz,
            delay_burst_len: self.delay_burst_len,
            delay_burst_extra: self.delay_burst_extra,
        };
        (c2s, s2c)
    }
}

/// Everything about one flow except the path and recovery mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// The application script (requests/responses).
    pub script: FlowScript,
    /// Client receive-buffer size in bytes = initial advertised window.
    pub client_buf: u64,
    /// Client application drain rate (bytes/s); `None` reads instantly.
    pub client_drain: Option<u64>,
    /// Probability per rate-limited read that the client app pauses.
    pub client_pause_prob: f64,
    /// Mean client pause duration.
    pub client_pause: SimDuration,
    /// Client delayed-ACK timer.
    pub delack_timeout: SimDuration,
    /// Server congestion-avoidance algorithm.
    pub cc: CcKind,
    /// Enable RFC 5827 early retransmit at the server.
    pub early_retransmit: bool,
    /// Enable sender pacing at the server.
    pub pacing: bool,
    /// Simulation cut-off.
    pub max_time: SimDuration,
}

impl Default for FlowSpec {
    fn default() -> Self {
        FlowSpec {
            script: FlowScript::single(100_000),
            client_buf: 256 * 1024,
            client_drain: None,
            client_pause_prob: 0.0,
            client_pause: SimDuration::from_secs(1),
            delack_timeout: SimDuration::from_millis(40),
            cc: CcKind::Cubic,
            early_retransmit: false,
            pacing: false,
            max_time: SimDuration::from_secs(600),
        }
    }
}

impl FlowSpec {
    /// A single-request flow for `bytes` of locally available content.
    pub fn response_bytes(bytes: u64) -> Self {
        FlowSpec {
            script: FlowScript::single(bytes),
            ..FlowSpec::default()
        }
    }

    /// Total response bytes across the script.
    pub fn total_response_bytes(&self) -> u64 {
        self.script.requests.iter().map(|r| r.response_bytes).sum()
    }
}

/// Simulate one flow: assemble the [`FlowSimConfig`] from the spec, path and
/// recovery mechanism, run it, and return the outcome (trace included).
pub fn simulate_flow(
    spec: &FlowSpec,
    path: &PathSpec,
    mechanism: RecoveryMechanism,
    seed: u64,
) -> FlowOutcome {
    FlowSim::new(flow_sim_config(spec, path, mechanism, seed), seed).run()
}

/// The synthetic [`FlowKey`] that [`simulate_flow`] assigns to a flow run
/// with `seed` — for callers that materialize a trace themselves (e.g. by
/// teeing a [`RecordSink`]) and want keys consistent with the default path.
pub fn flow_key_for_seed(seed: u64) -> FlowKey {
    FlowKey::synthetic((seed & 0xffff_ffff) as u32)
}

/// Simulate one flow while streaming every server-side record into `sink`
/// instead of materializing a trace: the returned outcome's `trace` is
/// empty; the records were consumed by (and are returned inside) the sink.
pub fn simulate_flow_into<S: RecordSink>(
    spec: &FlowSpec,
    path: &PathSpec,
    mechanism: RecoveryMechanism,
    seed: u64,
    sink: S,
) -> (FlowOutcome, S) {
    FlowSim::with_sink(flow_sim_config(spec, path, mechanism, seed), seed, sink).run_streaming()
}

/// [`simulate_flow`] against a worker's recycled simulator arenas: the flow
/// runs inside `scratch`'s event slab and buffers, which are handed back
/// reset afterwards. Output is bit-identical to [`simulate_flow`].
pub fn simulate_flow_scratch(
    spec: &FlowSpec,
    path: &PathSpec,
    mechanism: RecoveryMechanism,
    seed: u64,
    scratch: &mut FlowScratch,
) -> FlowOutcome {
    let cfg = flow_sim_config(spec, path, mechanism, seed);
    let sink = FlowTrace::new(FlowKey::synthetic(cfg.flow_id));
    let (mut out, trace) =
        FlowSim::with_sink_scratch(cfg, seed, sink, scratch).run_streaming_into(scratch);
    out.trace = trace;
    out
}

/// [`simulate_flow_into_scratch`] with the ground-truth oracle enabled: the
/// returned outcome's `oracle` field carries every simulated cause event
/// (see [`tcp_sim::sim::FlowSim::with_oracle`]). The oracle is a pure
/// side-channel — the sink receives records byte-identical to
/// [`simulate_flow_into_scratch`]'s for the same inputs.
pub fn simulate_flow_oracle_into_scratch<S: RecordSink>(
    spec: &FlowSpec,
    path: &PathSpec,
    mechanism: RecoveryMechanism,
    seed: u64,
    sink: S,
    scratch: &mut FlowScratch,
) -> (FlowOutcome, S) {
    FlowSim::with_sink_scratch(
        flow_sim_config(spec, path, mechanism, seed),
        seed,
        sink,
        scratch,
    )
    .with_oracle()
    .run_streaming_into(scratch)
}

/// [`simulate_flow_into`] against a worker's recycled simulator arenas.
/// Output is bit-identical to [`simulate_flow_into`].
pub fn simulate_flow_into_scratch<S: RecordSink>(
    spec: &FlowSpec,
    path: &PathSpec,
    mechanism: RecoveryMechanism,
    seed: u64,
    sink: S,
    scratch: &mut FlowScratch,
) -> (FlowOutcome, S) {
    FlowSim::with_sink_scratch(
        flow_sim_config(spec, path, mechanism, seed),
        seed,
        sink,
        scratch,
    )
    .run_streaming_into(scratch)
}

/// The [`FlowSimConfig`] both [`simulate_flow`] variants run under.
fn flow_sim_config(
    spec: &FlowSpec,
    path: &PathSpec,
    mechanism: RecoveryMechanism,
    seed: u64,
) -> FlowSimConfig {
    let (c2s, s2c) = path.links();
    FlowSimConfig {
        server_tx: SenderConfig {
            cc: spec.cc,
            recovery: mechanism,
            early_retransmit: spec.early_retransmit,
            pacing: spec.pacing,
            ..SenderConfig::default()
        },
        server_rx: ReceiverConfig {
            buf_bytes: 1 << 20,
            ..ReceiverConfig::default()
        },
        client_tx: SenderConfig::default(),
        client_rx: ReceiverConfig {
            buf_bytes: spec.client_buf,
            delack_timeout: spec.delack_timeout,
            ..ReceiverConfig::default()
        },
        c2s,
        s2c,
        client_drain: spec.client_drain,
        client_pause_prob: spec.client_pause_prob,
        client_pause: spec.client_pause,
        script: spec.script.clone(),
        max_time: spec.max_time,
        syn_timeout: SimDuration::from_secs(3),
        flow_id: (seed & 0xffff_ffff) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_links_split_rtt() {
        let p = PathSpec {
            rtt: SimDuration::from_millis(120),
            ..PathSpec::default()
        };
        let (c2s, s2c) = p.links();
        assert_eq!(c2s.prop_delay, SimDuration::from_millis(60));
        assert_eq!(s2c.prop_delay, SimDuration::from_millis(60));
    }

    #[test]
    fn ack_path_loss_is_derived_and_milder() {
        let p = PathSpec {
            loss: LossSpec::bernoulli(0.03),
            ..PathSpec::default()
        };
        let (c2s, s2c) = p.links();
        assert_eq!(s2c.loss, LossSpec::bernoulli(0.03));
        match c2s.loss {
            LossSpec::Bernoulli { p } => assert!((p - 0.01).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simulate_flow_runs_end_to_end() {
        let spec = FlowSpec::response_bytes(30_000);
        let out = simulate_flow(&spec, &PathSpec::default(), RecoveryMechanism::Native, 99);
        assert!(out.completed);
        assert_eq!(out.response_bytes, 30_000);
        assert_eq!(out.trace.goodput_bytes_out(), 30_000);
    }

    #[test]
    fn identical_seeds_identical_outcomes() {
        let spec = FlowSpec::response_bytes(50_000);
        let path = PathSpec {
            loss: LossSpec::bernoulli(0.02),
            ..PathSpec::default()
        };
        let a = simulate_flow(&spec, &path, RecoveryMechanism::Native, 5);
        let b = simulate_flow(&spec, &path, RecoveryMechanism::Native, 5);
        assert_eq!(a.trace.records, b.trace.records);
    }
}

//! Calibrated models of the paper's three services.
//!
//! Targets, from the paper's published statistics:
//!
//! | service           | avg size | avg RTT | loss | notable clients |
//! |-------------------|----------|---------|------|-----------------|
//! | cloud storage     | 1.7 MB   | 143 ms  | 3.9% | shared connections, think times |
//! | software download | 129 KB   | 147 ms  | 4.1% | 18% init rwnd < 10 MSS, some 2 MSS (Fig. 6) |
//! | web search        | 14 KB    | 106 ms  | 2.1% | short flows, dynamic back-end content |
//!
//! Loss is Gilbert–Elliott bursty (correlated drops are what produce the
//! paper's double-retransmission and continuous-loss stalls). Flow sizes
//! are lognormal with heavy tails; initial receive windows follow the
//! Fig. 6 bucket shapes.

use simnet::rng::{EmpiricalDist, SimRng};
use simnet::time::SimDuration;
use tcp_sim::recovery::SrtoConfig;
use tcp_sim::sim::{FlowScript, RequestSpec, SupplyPauses};

use crate::spec::{FlowSpec, PathSpec};

/// One of the paper's three studied services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Service {
    /// Qihoo 360 cloud storage download (shared connections, large files).
    CloudStorage,
    /// Security-software and patch download (one file per connection).
    SoftwareDownload,
    /// Web search (short, latency-sensitive, dynamic content).
    WebSearch,
}

impl Service {
    /// All three services, in the paper's table order.
    pub const ALL: [Service; 3] = [
        Service::CloudStorage,
        Service::SoftwareDownload,
        Service::WebSearch,
    ];

    /// Row label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Service::CloudStorage => "cloud stor.",
            Service::SoftwareDownload => "soft. down.",
            Service::WebSearch => "web search",
        }
    }

    /// The S-RTO deployment parameters the paper used for this service
    /// (`T1` = 5 for web search, 10 for cloud storage; software download
    /// was not in the deployment — we use the cloud-storage setting).
    pub fn srto_config(&self) -> SrtoConfig {
        match self {
            Service::WebSearch => SrtoConfig::web_search(),
            _ => SrtoConfig::cloud_storage(),
        }
    }

    /// The server TCP port this service listens on in synthetic captures:
    /// web search on 80, software download on 8080, cloud storage on 8443.
    /// The live pipeline's per-port report section and `tapo advise` use
    /// the port to attribute flows back to a service.
    pub fn server_port(&self) -> u16 {
        match self {
            Service::CloudStorage => 8443,
            Service::SoftwareDownload => 8080,
            Service::WebSearch => 80,
        }
    }

    /// Inverse of [`Service::server_port`].
    pub fn from_server_port(port: u16) -> Option<Service> {
        match port {
            8443 => Some(Service::CloudStorage),
            8080 => Some(Service::SoftwareDownload),
            80 => Some(Service::WebSearch),
            _ => None,
        }
    }
}

const MSS: f64 = 1448.0;

/// A calibrated generative model for one service's flows.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    /// Which service this models.
    pub service: Service,
    rtt_median: f64,
    rtt_sigma: f64,
    loss_mean: f64,
    loss_burst_rtts: f64,
    init_rwnd_mss: EmpiricalDist,
}

impl ServiceModel {
    /// The model calibrated to the paper's published statistics.
    pub fn calibrated(service: Service) -> Self {
        match service {
            Service::CloudStorage => ServiceModel {
                service,
                rtt_median: 0.078,
                rtt_sigma: 0.45,
                loss_mean: 0.030,
                loss_burst_rtts: 0.8,
                init_rwnd_mss: EmpiricalDist::new(vec![
                    (0.08, 45.0, 45.0),
                    (0.30, 182.0, 182.0),
                    (0.32, 364.0, 364.0),
                    (0.10, 648.0, 648.0),
                    (0.20, 1297.0, 1297.0),
                ]),
            },
            Service::SoftwareDownload => ServiceModel {
                service,
                rtt_median: 0.080,
                rtt_sigma: 0.45,
                loss_mean: 0.032,
                loss_burst_rtts: 1.1,
                // 18% below 10 MSS, including genuine 2-MSS (4096 B)
                // clients — Fig. 6.
                init_rwnd_mss: EmpiricalDist::new(vec![
                    (0.05, 2.0, 2.0),
                    (0.13, 11.0, 11.0),
                    (0.32, 45.0, 45.0),
                    (0.40, 182.0, 182.0),
                    (0.10, 648.0, 648.0),
                ]),
            },
            Service::WebSearch => ServiceModel {
                service,
                rtt_median: 0.058,
                rtt_sigma: 0.45,
                loss_mean: 0.026,
                loss_burst_rtts: 0.7,
                init_rwnd_mss: EmpiricalDist::new(vec![
                    (0.10, 45.0, 45.0),
                    (0.35, 182.0, 182.0),
                    (0.30, 364.0, 364.0),
                    (0.25, 1297.0, 1297.0),
                ]),
            },
        }
    }

    /// Draw one flow: its application behaviour and its network path.
    pub fn sample(&self, rng: &mut SimRng) -> (FlowSpec, PathSpec) {
        let rtt_s = rng
            .lognormal(self.rtt_median.ln(), self.rtt_sigma)
            .clamp(0.01, 1.5);
        // Loss is heterogeneous across flows: roughly half the population
        // sees an almost-clean path, a minority suffers badly. (The paper's
        // aggregate 2–4% rate cannot hold uniformly: at a uniform 4% random
        // loss no flow could reach the published 400–650 KB/s averages.)
        let flow_loss = {
            let bucket = rng.weighted_index(&[0.50, 0.35, 0.15]);
            let base = match bucket {
                0 => 0.001 + rng.f64() * 0.009,
                1 => 0.01 + rng.f64() * 0.04,
                _ => 0.04 + rng.f64() * 0.08,
            };
            // Scale so the population mean tracks the service's target.
            (base * self.loss_mean / 0.025).clamp(0.0002, 0.08)
        };
        // Access-link bottleneck of the 2014 broadband population the paper
        // measured: a few Mbit/s drop-tail links. Old client software
        // correlates with slower access links. A third of paths are
        // seriously bufferbloated — self-induced queueing spreads their RTT
        // samples across an order of magnitude (the paper's RTO ≫ RTT
        // observation, Fig. 1) — while queue overflows on the shallower
        // paths are a natural source of continuous-loss bursts (Fig. 12).
        let init_rwnd = (self.init_rwnd_mss.sample(rng) * MSS) as u64;
        let old_client = init_rwnd <= (11.0 * MSS) as u64;
        let bw_scale = if old_client { 0.4 } else { 1.0 };
        let bandwidth_bps = (rng.lognormal(6_000_000f64.ln(), 0.6) * bw_scale)
            .clamp(1_000_000.0, 50_000_000.0) as u64;
        // Buffer depth in *seconds* of line rate.
        let bloat_s = 0.05 + rng.f64() * 0.15;
        let queue_pkts = ((bandwidth_bps as f64 * bloat_s / 8.0 / 1500.0) as usize).max(16);
        let path = PathSpec {
            rtt: SimDuration::from_secs_f64(rtt_s),
            // Residual per-packet delay variance (order-preserving).
            jitter: SimDuration::from_secs_f64(rtt_s * 0.25),
            // Loss bursts last on the order of an RTT, so a fast
            // retransmission often dies with the original (f-double) while
            // a backed-off RTO retransmission usually survives.
            loss: simnet::loss::LossSpec::bursty(
                flow_loss,
                SimDuration::from_secs_f64(rtt_s * self.loss_burst_rtts),
            ),
            ack_loss: None,
            bandwidth_bps,
            queue_pkts,
            // Rare single-packet delay spikes (shallow reordering; deep
            // reordering is uncommon on real paths and the delay-burst
            // process below covers path-wide delay variation).
            reorder_prob: 0.001,
            reorder_extra: SimDuration::from_secs_f64(rtt_s * 0.15),
            // ...and path-wide delay bursts, which quiet the whole feedback
            // loop for several RTTs: the source of packet-delay and
            // ACK-delay stalls.
            delay_burst_hz: 0.15,
            delay_burst_len: SimDuration::from_secs_f64(rtt_s * 2.0),
            delay_burst_extra: SimDuration::from_secs_f64(rtt_s * 1.2),
        };

        let spec = match self.service {
            Service::CloudStorage => self.sample_cloud(rng, init_rwnd),
            Service::SoftwareDownload => self.sample_software(rng, init_rwnd),
            Service::WebSearch => self.sample_web(rng, init_rwnd),
        };
        (spec, path)
    }

    fn sample_cloud(&self, rng: &mut SimRng, init_rwnd: u64) -> FlowSpec {
        // Shared connections: several file chunks per flow with think times.
        let n_files = 1 + (rng.exponential(1.2) as usize).min(5);
        let mut requests = Vec::with_capacity(n_files);
        for i in 0..n_files {
            let size = rng
                .lognormal(450_000f64.ln(), 1.1)
                .clamp(10_000.0, 20_000_000.0) as u64;
            let backend = if rng.chance(0.6) {
                SimDuration::from_secs_f64(rng.lognormal(0.12f64.ln(), 0.9).clamp(0.01, 5.0))
            } else {
                SimDuration::ZERO
            };
            requests.push(RequestSpec {
                think_time: if i == 0 {
                    SimDuration::from_secs_f64(rng.exponential(0.05).min(0.5))
                } else if rng.chance(0.08) {
                    // Occasionally the user pauses between files.
                    SimDuration::from_secs_f64(rng.exponential(3.0).min(20.0))
                } else {
                    // Chunk requests are mostly pipelined back to back.
                    SimDuration::from_secs_f64(rng.exponential(0.08).min(0.6))
                },
                request_bytes: 300,
                response_bytes: size,
                backend_delay: backend,
                supply: if rng.chance(0.18) {
                    Some(SupplyPauses {
                        chunk_bytes: 96 * 1024,
                        gap: SimDuration::from_secs_f64(rng.exponential(0.6).clamp(0.15, 3.0)),
                    })
                } else {
                    None
                },
            });
        }
        FlowSpec {
            script: FlowScript { requests },
            client_buf: init_rwnd,
            client_drain: if rng.chance(0.15) {
                Some(
                    rng.lognormal(300_000f64.ln(), 0.7)
                        .clamp(30_000.0, 5_000_000.0) as u64,
                )
            } else {
                None
            },
            client_pause_prob: 0.01,
            client_pause: SimDuration::from_secs_f64(rng.exponential(1.0).clamp(0.3, 6.0)),
            delack_timeout: SimDuration::from_millis(40),
            max_time: SimDuration::from_secs(600),
            ..FlowSpec::default()
        }
    }

    fn sample_software(&self, rng: &mut SimRng, init_rwnd: u64) -> FlowSpec {
        let size = rng
            .lognormal(70_000f64.ln(), 1.0)
            .clamp(4_000.0, 3_000_000.0) as u64;
        let backend = if rng.chance(0.15) {
            SimDuration::from_secs_f64(rng.lognormal(0.25f64.ln(), 0.8).clamp(0.02, 4.0))
        } else {
            SimDuration::ZERO
        };
        // Synchronized patch releases load the servers: chunked supply.
        let supply = if rng.chance(0.12) {
            Some(SupplyPauses {
                chunk_bytes: 48 * 1024,
                gap: SimDuration::from_secs_f64(rng.exponential(1.5).clamp(0.3, 8.0)),
            })
        } else {
            None
        };
        let old_client = init_rwnd <= (11.0 * MSS) as u64;
        FlowSpec {
            script: FlowScript {
                requests: vec![RequestSpec {
                    think_time: SimDuration::from_secs_f64(rng.exponential(0.1).min(1.0)),
                    request_bytes: 300,
                    response_bytes: size,
                    backend_delay: backend,
                    supply,
                }],
            },
            client_buf: init_rwnd,
            // Old client software both advertises tiny windows and reads
            // slowly — the paper's zero-window / ACK-delay population.
            client_drain: if old_client {
                Some(
                    rng.lognormal(250_000f64.ln(), 0.6)
                        .clamp(50_000.0, 900_000.0) as u64,
                )
            } else if rng.chance(0.2) {
                Some(
                    rng.lognormal(500_000f64.ln(), 0.6)
                        .clamp(50_000.0, 5_000_000.0) as u64,
                )
            } else {
                None
            },
            client_pause_prob: if old_client { 0.03 } else { 0.005 },
            client_pause: SimDuration::from_secs_f64(rng.exponential(1.5).clamp(0.3, 8.0)),
            // Old client stacks use a long (but adaptive) delayed-ACK
            // timer; combined with 2-MSS windows it races the sender's RTO
            // floor — the paper's ACK-delay pathology (§4.3).
            delack_timeout: if old_client {
                SimDuration::from_millis(120)
            } else {
                SimDuration::from_millis(40)
            },
            max_time: SimDuration::from_secs(600),
            ..FlowSpec::default()
        }
    }

    fn sample_web(&self, rng: &mut SimRng, init_rwnd: u64) -> FlowSpec {
        // Many responses fit one or two packets; the tail is heavy.
        let size = if rng.chance(0.4) {
            rng.range_u64(300, 2_000)
        } else {
            rng.lognormal(10_000f64.ln(), 1.2).clamp(1_000.0, 200_000.0) as u64
        };
        // Search results are dynamic: always fetched from the back end.
        let backend = SimDuration::from_secs_f64(rng.lognormal(0.1f64.ln(), 1.0).clamp(0.005, 5.0));
        FlowSpec {
            script: FlowScript {
                requests: vec![RequestSpec {
                    think_time: SimDuration::from_secs_f64(rng.exponential(0.05).min(0.5)),
                    request_bytes: 300,
                    response_bytes: size,
                    backend_delay: backend,
                    supply: None,
                }],
            },
            client_buf: init_rwnd,
            client_drain: None,
            delack_timeout: SimDuration::from_millis(40),
            max_time: SimDuration::from_secs(300),
            ..FlowSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_response(service: Service, n: usize) -> f64 {
        let model = ServiceModel::calibrated(service);
        let mut rng = SimRng::seed(7);
        let mut total = 0.0;
        for _ in 0..n {
            let (spec, _) = model.sample(&mut rng);
            total += spec.total_response_bytes() as f64;
        }
        total / n as f64
    }

    #[test]
    fn flow_sizes_order_matches_table1() {
        // Cloud ≫ software ≫ web search (one and two orders of magnitude).
        let cloud = mean_response(Service::CloudStorage, 2000);
        let soft = mean_response(Service::SoftwareDownload, 2000);
        let web = mean_response(Service::WebSearch, 2000);
        assert!(cloud > 700_000.0 && cloud < 4_000_000.0, "cloud {cloud}");
        assert!(soft > 60_000.0 && soft < 300_000.0, "soft {soft}");
        assert!(web > 5_000.0 && web < 40_000.0, "web {web}");
        assert!(cloud / soft > 5.0);
        assert!(soft / web > 4.0);
    }

    #[test]
    fn rtt_means_match_table1_ordering() {
        let mut rng = SimRng::seed(9);
        let mean_rtt = |service: Service, rng: &mut SimRng| {
            let model = ServiceModel::calibrated(service);
            let mut total = 0.0;
            for _ in 0..2000 {
                let (_, path) = model.sample(rng);
                total += path.rtt.as_secs_f64();
            }
            total / 2000.0
        };
        // These are *base* (propagation) RTTs; measured per-flow RTTs also
        // include queueing and jitter, landing near the paper's Table 1.
        let web = mean_rtt(Service::WebSearch, &mut rng);
        let cloud = mean_rtt(Service::CloudStorage, &mut rng);
        assert!(web > 0.05 && web < 0.09, "web rtt {web}");
        assert!(cloud > 0.07 && cloud < 0.12, "cloud rtt {cloud}");
        assert!(cloud > web);
    }

    #[test]
    fn software_download_has_small_window_clients() {
        let model = ServiceModel::calibrated(Service::SoftwareDownload);
        let mut rng = SimRng::seed(11);
        let mut small = 0;
        let mut tiny = 0;
        let n = 4000;
        for _ in 0..n {
            let (spec, _) = model.sample(&mut rng);
            // The paper's "small" population (Fig. 6 / Table 4) spans the
            // 2- and 11-MSS buckets.
            if spec.client_buf <= (11.0 * MSS) as u64 {
                small += 1;
            }
            if spec.client_buf <= (2.0 * MSS) as u64 {
                tiny += 1;
            }
        }
        let small_frac = small as f64 / n as f64;
        let tiny_frac = tiny as f64 / n as f64;
        assert!((small_frac - 0.18).abs() < 0.04, "small {small_frac}");
        assert!(tiny_frac > 0.02 && tiny_frac < 0.09, "tiny {tiny_frac}");
    }

    #[test]
    fn cloud_storage_flows_are_multi_request() {
        let model = ServiceModel::calibrated(Service::CloudStorage);
        let mut rng = SimRng::seed(13);
        let multi = (0..500)
            .filter(|_| model.sample(&mut rng).0.script.requests.len() > 1)
            .count();
        assert!(multi > 100, "multi-request flows: {multi}/500");
    }

    #[test]
    fn web_search_always_has_backend_delay() {
        let model = ServiceModel::calibrated(Service::WebSearch);
        let mut rng = SimRng::seed(17);
        for _ in 0..200 {
            let (spec, _) = model.sample(&mut rng);
            assert!(spec.script.requests[0].backend_delay > SimDuration::ZERO);
        }
    }

    #[test]
    fn srto_deployment_parameters_per_service() {
        assert_eq!(Service::WebSearch.srto_config().t1_packets, 5);
        assert_eq!(Service::CloudStorage.srto_config().t1_packets, 10);
    }
}

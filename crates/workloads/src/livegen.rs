//! Interleaved multi-service capture generation — the load generator for
//! the live pipeline.
//!
//! [`crate::synthesize_corpus`] writes flows back-to-back (every flow
//! starts at t≈0), which is fine for offline per-flow analysis but nothing
//! like what a server NIC sees. This module produces what `tapo live`
//! ingests in production: thousands of **overlapping** flows from all three
//! services, their packets merged into one capture in strict time order,
//! with flow starts spread by exponential inter-arrivals (Poisson-process
//! arrivals, the standard traffic model).
//!
//! Every flow gets a unique synthetic [`FlowKey`] (keyed by its global
//! index, not its seed — seed-derived keys can collide at 10k+ flows), so
//! captures of any size demultiplex cleanly. Generation is deterministic:
//! the same spec produces byte-identical pcap files at any thread count
//! (per-flow seeds are pure functions of the spec, and the merge orders
//! ties by flow index).

use std::collections::BinaryHeap;
use std::io::{self, Write};

use simnet::rng::SimRng;
use simnet::time::{SimDuration, SimTime};
use tcp_sim::recovery::RecoveryMechanism;
use tcp_trace::flow::{FlowKey, FlowTrace};
use tcp_trace::pcap::PcapWriter;

use crate::corpus::{flow_seed, sample_flow};
use crate::service::{Service, ServiceModel};
use crate::spec::simulate_flow;

/// Recovery mechanism selector for mixed-service generation (per-service
/// SRTO configs are resolved internally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveMechanism {
    /// Standard RTO/fast-retransmit recovery.
    Native,
    /// Tail-loss probe.
    Tlp,
    /// Smart RTO with each service's calibrated config.
    Srto,
}

impl LiveMechanism {
    fn resolve(self, service: Service) -> RecoveryMechanism {
        match self {
            LiveMechanism::Native => RecoveryMechanism::Native,
            LiveMechanism::Tlp => RecoveryMechanism::tlp(),
            LiveMechanism::Srto => RecoveryMechanism::Srto(service.srto_config()),
        }
    }
}

/// What to generate: how many flows per service, how densely they overlap,
/// and under which recovery mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveGenSpec {
    /// Flows per service (total = 3×this).
    pub flows_per_service: usize,
    /// Master seed; drives sampling, simulation and arrival times.
    pub seed: u64,
    /// Recovery mechanism for every flow.
    pub mechanism: LiveMechanism,
    /// Mean exponential inter-arrival gap between consecutive flow starts.
    /// Smaller = more concurrent flows.
    pub mean_gap: SimDuration,
    /// Simulation worker threads (0 = all cores). Output is identical at
    /// any thread count.
    pub threads: usize,
}

impl Default for LiveGenSpec {
    fn default() -> Self {
        LiveGenSpec {
            flows_per_service: 100,
            seed: 2015,
            mechanism: LiveMechanism::Native,
            mean_gap: SimDuration::from_millis(20),
            threads: 0,
        }
    }
}

/// Counters from one generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveGenStats {
    /// Flows written.
    pub flows: usize,
    /// Packets written.
    pub packets: u64,
    /// Response bytes served across all flows.
    pub bytes: u64,
    /// Capture span (first to last packet timestamp).
    pub span: SimDuration,
}

const SERVICES: [Service; 3] = [
    Service::CloudStorage,
    Service::SoftwareDownload,
    Service::WebSearch,
];

/// SplitMix64 finalizer — mixes a daemon index into the base seed so
/// per-daemon streams are decorrelated even for adjacent indices.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stand up an N-daemon fleet fixture from one base spec: daemon `i` is
/// named `fe{i}` and draws a seed mixed from the base seed and its index,
/// so the captures are statistically alike (same services, same load
/// shape) but packet-for-packet independent — exactly what a row of
/// front-end machines behind one load balancer looks like. Used by the
/// fleet aggregation tests, the bench's fleet phase, and CI smoke.
pub fn daemon_specs(base: &LiveGenSpec, daemons: usize) -> Vec<(String, LiveGenSpec)> {
    (0..daemons)
        .map(|i| {
            let mut spec = *base;
            spec.seed = mix64(base.seed ^ (i as u64).wrapping_mul(0xd6e8_feb8_6659_fd93));
            (format!("fe{i}"), spec)
        })
        .collect()
}

/// Simulate `3 × flows_per_service` flows (round-robin across the three
/// services), offset their starts by Poisson arrivals, and write one
/// time-ordered interleaved capture to `out`.
pub fn generate_interleaved<W: Write>(out: W, spec: &LiveGenSpec) -> io::Result<LiveGenStats> {
    let total = spec.flows_per_service * SERVICES.len();
    let models: Vec<ServiceModel> = SERVICES
        .iter()
        .map(|&s| ServiceModel::calibrated(s))
        .collect();

    // Arrival offsets: one serial RNG stream, independent of thread count.
    let mut arrivals = Vec::with_capacity(total);
    {
        let mut rng = SimRng::seed(spec.seed ^ 0xa441_7a15);
        let mut t = SimTime::ZERO;
        for _ in 0..total {
            arrivals.push(t);
            t += SimDuration::from_secs_f64(rng.exponential(spec.mean_gap.as_secs_f64()));
        }
    }

    let threads = if spec.threads == 0 {
        simnet::par::available_threads()
    } else {
        spec.threads
    };

    // Streaming k-way merge: simulate flows lazily, in arrival order, one
    // batch at a time, and drop each trace the moment its last record is
    // written. Memory is bounded by the flows *resident in the merge
    // window* (those overlapping the current capture time) plus one batch —
    // not by the whole capture, which for the bench's 5.9M-packet run used
    // to mean ~775 MB of materialized traces.
    //
    // Correctness of the frontier: arrivals are assigned in global-index
    // order, so every unsimulated flow g' ≥ `simulated` starts at or after
    // `arrivals[simulated]`. A heap entry with t ≤ that bound can therefore
    // be emitted now; at exact equality the (t, g, idx) tie-break favors
    // the resident flow (g < simulated ≤ g') just as it would in a fully
    // materialized merge, so the output bytes are identical.
    const SIM_BATCH: usize = 512;
    let mut traces: Vec<Option<FlowTrace>> = (0..total).map(|_| None).collect();
    let mut simulated = 0usize;
    let mut writer = PcapWriter::new(out)?;
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    let mut stats = LiveGenStats::default();
    let mut first_t = None;
    let mut last_t = SimTime::ZERO;
    loop {
        while simulated < total
            && heap
                .peek()
                .is_none_or(|&std::cmp::Reverse((t, _, _))| t > arrivals[simulated].as_micros())
        {
            let end = (simulated + SIM_BATCH).min(total);
            // Each global flow g is service g%3, per-service index g/3 —
            // the same (spec, path, seed) triple the offline corpus of that
            // service would draw, so live and offline corpora are
            // statistically identical.
            let batch: Vec<(FlowTrace, u64)> =
                simnet::par::par_map(end - simulated, threads, |i| {
                    let g = simulated + i;
                    let service_idx = g % SERVICES.len();
                    let index = g / SERVICES.len();
                    let model = &models[service_idx];
                    let (fspec, path) = sample_flow(model, spec.seed, index);
                    let seed = flow_seed(spec.seed, model.service, index);
                    let mechanism = spec.mechanism.resolve(model.service);
                    let mut out = simulate_flow(&fspec, &path, mechanism, seed);
                    // Unique key per global index; seed-derived keys can
                    // collide. The server port identifies the service so
                    // per-port live reports attribute flows back to it.
                    let mut key = FlowKey::synthetic(g as u32);
                    key.server_port = model.service.server_port();
                    out.trace.key = Some(key);
                    (out.trace, out.response_bytes)
                });
            for (i, (trace, bytes)) in batch.into_iter().enumerate() {
                let g = simulated + i;
                stats.bytes += bytes;
                if let Some(first) = trace.records.first() {
                    let t = (first.t + arrivals[g].saturating_since(SimTime::ZERO)).as_micros();
                    heap.push(std::cmp::Reverse((t, g, 0)));
                    traces[g] = Some(trace);
                }
            }
            simulated = end;
        }
        let Some(std::cmp::Reverse((t_us, g, idx))) = heap.pop() else {
            break;
        };
        let trace = traces[g].as_ref().expect("resident while records remain");
        let key = trace.key.expect("key assigned above");
        let mut rec = trace.records[idx];
        rec.t = SimTime::from_micros(t_us);
        writer.write_record(&key, &rec)?;
        stats.packets += 1;
        first_t.get_or_insert(rec.t);
        last_t = rec.t;
        if idx + 1 < trace.records.len() {
            let nt = (trace.records[idx + 1].t + arrivals[g].saturating_since(SimTime::ZERO))
                .as_micros();
            heap.push(std::cmp::Reverse((nt, g, idx + 1)));
        } else {
            traces[g] = None; // last record written — free the trace
        }
    }
    writer.finish()?;
    stats.flows = total;
    stats.span = last_t.saturating_since(first_t.unwrap_or(SimTime::ZERO));
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_trace::pcap::{PcapReader, PcapStream};

    fn small_spec() -> LiveGenSpec {
        LiveGenSpec {
            flows_per_service: 6,
            seed: 42,
            mean_gap: SimDuration::from_millis(5),
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic_at_any_thread_count() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut one = small_spec();
        one.threads = 1;
        let mut four = small_spec();
        four.threads = 4;
        let sa = generate_interleaved(&mut a, &one).unwrap();
        let sb = generate_interleaved(&mut b, &four).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a, b, "capture bytes must not depend on thread count");
        assert!(sa.packets > 0);
    }

    #[test]
    fn capture_is_time_ordered_and_interleaved() {
        let mut buf = Vec::new();
        generate_interleaved(&mut buf, &small_spec()).unwrap();
        let mut stream = PcapStream::new(&buf[..]).unwrap();
        let mut prev = None;
        let mut key_switches = 0usize;
        let mut last_key = None;
        let mut packets = 0u64;
        while let Some(pkt) = stream.next_packet().unwrap() {
            if let Some(p) = prev {
                assert!(pkt.t >= p, "capture must be time-ordered");
            }
            prev = Some(pkt.t);
            if last_key != Some(pkt.key) {
                key_switches += 1;
                last_key = Some(pkt.key);
            }
            packets += 1;
        }
        assert_eq!(stream.stats().packets, packets);
        assert_eq!(stream.stats().packets_skipped, 0);
        // Truly interleaved: flows alternate far more often than a
        // back-to-back corpus (which would switch exactly once per flow).
        assert!(
            key_switches > 18,
            "only {key_switches} key switches — not interleaved"
        );
    }

    #[test]
    fn flows_demultiplex_with_unique_keys() {
        let mut buf = Vec::new();
        let stats = generate_interleaved(&mut buf, &small_spec()).unwrap();
        let flows = PcapReader::read_all(&buf[..]).unwrap();
        assert_eq!(flows.len(), stats.flows);
        let mut keys: Vec<_> = flows.iter().map(|f| f.key.unwrap()).collect();
        keys.sort_by_key(|k| (k.client_ip, k.client_port));
        keys.dedup();
        assert_eq!(keys.len(), stats.flows, "keys must be unique");
    }

    #[test]
    fn daemon_specs_derive_distinct_deterministic_seeds() {
        let base = small_spec();
        let a = daemon_specs(&base, 4);
        let b = daemon_specs(&base, 4);
        assert_eq!(a, b, "derivation is a pure function of the base spec");
        assert_eq!(a.len(), 4);
        for (i, (id, spec)) in a.iter().enumerate() {
            assert_eq!(id, &format!("fe{i}"));
            assert_ne!(spec.seed, base.seed, "fe{i} must not reuse the base seed");
        }
        let mut seeds: Vec<u64> = a.iter().map(|(_, s)| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "per-daemon seeds must be distinct");
    }

    #[test]
    fn server_ports_identify_services() {
        let mut buf = Vec::new();
        let stats = generate_interleaved(&mut buf, &small_spec()).unwrap();
        let flows = PcapReader::read_all(&buf[..]).unwrap();
        let mut per_port = std::collections::BTreeMap::new();
        for f in &flows {
            let port = f.key.unwrap().server_port;
            assert!(
                Service::from_server_port(port).is_some(),
                "unknown server port {port}"
            );
            *per_port.entry(port).or_insert(0usize) += 1;
        }
        // Round-robin assignment: every service gets exactly its share,
        // on its own port.
        assert_eq!(per_port.len(), SERVICES.len());
        for (&port, &n) in &per_port {
            assert_eq!(n, stats.flows / SERVICES.len(), "port {port}");
        }
    }
}

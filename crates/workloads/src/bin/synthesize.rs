//! `synthesize` — generate a calibrated trace corpus as a pcap file.
//!
//! The companion to the `tapo` CLI: it produces the kind of server-side
//! capture the paper's front-ends recorded, from the calibrated service
//! models, so the full offline workflow can be exercised without any
//! production data.
//!
//! ```text
//! synthesize <cloud|software|web> <out.pcap> [--flows N] [--seed S]
//!            [--mechanism native|tlp|srto]
//! synthesize mixed <out.pcap> [--flows N] [--seed S] [--mean-gap-ms MS]
//!            [--mechanism native|tlp|srto] [--threads N]
//! ```
//!
//! The `mixed` mode interleaves flows from **all three** services into one
//! time-ordered capture with Poisson flow arrivals — the input shape the
//! `tapo live` pipeline is built for (`--flows` is the *total* across
//! services, rounded up to a multiple of three).

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use simnet::time::SimDuration;
use tcp_sim::recovery::RecoveryMechanism;
use tcp_trace::pcap::PcapWriter;
use workloads::{generate_interleaved, synthesize_corpus, LiveGenSpec, LiveMechanism, Service};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let usage = "usage: synthesize <cloud|software|web|mixed> <out.pcap> \
                 [--flows N] [--seed S] [--mechanism native|tlp|srto] \
                 [--mean-gap-ms MS] [--threads N]";
    let first = args.next();
    if first.as_deref() == Some("mixed") {
        return run_mixed(args, usage);
    }
    let service = match first.as_deref() {
        Some("cloud") => Service::CloudStorage,
        Some("software") => Service::SoftwareDownload,
        Some("web") => Service::WebSearch,
        _ => {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
    };
    let Some(out_path) = args.next() else {
        eprintln!("{usage}");
        return ExitCode::from(2);
    };
    let mut flows = 100usize;
    let mut seed = 2015u64;
    let mut mechanism = RecoveryMechanism::Native;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flows" => {
                flows = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--flows requires a count");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer");
                    std::process::exit(2);
                })
            }
            "--mechanism" => {
                mechanism = match args.next().as_deref() {
                    Some("native") => RecoveryMechanism::Native,
                    Some("tlp") => RecoveryMechanism::tlp(),
                    Some("srto") => RecoveryMechanism::Srto(service.srto_config()),
                    _ => {
                        eprintln!("--mechanism must be native, tlp or srto");
                        return ExitCode::from(2);
                    }
                };
            }
            other => {
                eprintln!("unknown option {other}\n{usage}");
                return ExitCode::from(2);
            }
        }
    }

    eprintln!(
        "synthesizing {flows} {} flows under {} (seed {seed})...",
        service.label(),
        mechanism.label()
    );
    let corpus = synthesize_corpus(service, flows, mechanism, seed);

    let file = match File::create(&out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = match PcapWriter::new(file) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut packets = 0usize;
    for flow in &corpus.flows {
        packets += flow.trace.records.len();
        if let Err(e) = writer.write_flow(&flow.trace) {
            eprintln!("write error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = writer.finish() {
        eprintln!("write error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {packets} packets from {} flows ({:.1} MB served, {:.0}% completed) to {out_path}",
        corpus.flows.len(),
        corpus.total_bytes() as f64 / 1e6,
        corpus.completion_rate() * 100.0,
    );
    ExitCode::SUCCESS
}

fn run_mixed(mut args: impl Iterator<Item = String>, usage: &str) -> ExitCode {
    let Some(out_path) = args.next() else {
        eprintln!("{usage}");
        return ExitCode::from(2);
    };
    let mut spec = LiveGenSpec::default();
    let mut total_flows = 300usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flows" => {
                total_flows = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--flows requires a count");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                spec.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer");
                    std::process::exit(2);
                })
            }
            "--mean-gap-ms" => {
                let ms: u64 = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--mean-gap-ms requires milliseconds");
                    std::process::exit(2);
                });
                spec.mean_gap = SimDuration::from_millis(ms);
            }
            "--threads" => {
                spec.threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threads requires a count");
                    std::process::exit(2);
                })
            }
            "--mechanism" => {
                spec.mechanism = match args.next().as_deref() {
                    Some("native") => LiveMechanism::Native,
                    Some("tlp") => LiveMechanism::Tlp,
                    Some("srto") => LiveMechanism::Srto,
                    _ => {
                        eprintln!("--mechanism must be native, tlp or srto");
                        return ExitCode::from(2);
                    }
                };
            }
            other => {
                eprintln!("unknown option {other}\n{usage}");
                return ExitCode::from(2);
            }
        }
    }
    spec.flows_per_service = total_flows.div_ceil(3);

    eprintln!(
        "synthesizing {} interleaved flows across 3 services (seed {}, mean gap {:.0} ms)...",
        spec.flows_per_service * 3,
        spec.seed,
        spec.mean_gap.as_secs_f64() * 1e3,
    );
    let file = match File::create(&out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match generate_interleaved(BufWriter::new(file), &spec) {
        Ok(stats) => {
            eprintln!(
                "wrote {} packets from {} flows ({:.1} MB served, {:.1} s span) to {out_path}",
                stats.packets,
                stats.flows,
                stats.bytes as f64 / 1e6,
                stats.span.as_secs_f64(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("write error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `synthesize` — generate a calibrated trace corpus as a pcap file.
//!
//! The companion to the `tapo` CLI: it produces the kind of server-side
//! capture the paper's front-ends recorded, from the calibrated service
//! models, so the full offline workflow can be exercised without any
//! production data.
//!
//! ```text
//! synthesize <cloud|software|web> <out.pcap> [--flows N] [--seed S]
//!            [--mechanism native|tlp|srto]
//! ```

use std::fs::File;
use std::process::ExitCode;

use tcp_sim::recovery::RecoveryMechanism;
use tcp_trace::pcap::PcapWriter;
use workloads::{synthesize_corpus, Service};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let usage = "usage: synthesize <cloud|software|web> <out.pcap> \
                 [--flows N] [--seed S] [--mechanism native|tlp|srto]";
    let service = match args.next().as_deref() {
        Some("cloud") => Service::CloudStorage,
        Some("software") => Service::SoftwareDownload,
        Some("web") => Service::WebSearch,
        _ => {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
    };
    let Some(out_path) = args.next() else {
        eprintln!("{usage}");
        return ExitCode::from(2);
    };
    let mut flows = 100usize;
    let mut seed = 2015u64;
    let mut mechanism = RecoveryMechanism::Native;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flows" => {
                flows = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--flows requires a count");
                    std::process::exit(2);
                })
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer");
                    std::process::exit(2);
                })
            }
            "--mechanism" => {
                mechanism = match args.next().as_deref() {
                    Some("native") => RecoveryMechanism::Native,
                    Some("tlp") => RecoveryMechanism::tlp(),
                    Some("srto") => RecoveryMechanism::Srto(service.srto_config()),
                    _ => {
                        eprintln!("--mechanism must be native, tlp or srto");
                        return ExitCode::from(2);
                    }
                };
            }
            other => {
                eprintln!("unknown option {other}\n{usage}");
                return ExitCode::from(2);
            }
        }
    }

    eprintln!(
        "synthesizing {flows} {} flows under {} (seed {seed})...",
        service.label(),
        mechanism.label()
    );
    let corpus = synthesize_corpus(service, flows, mechanism, seed);

    let file = match File::create(&out_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = match PcapWriter::new(file) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut packets = 0usize;
    for flow in &corpus.flows {
        packets += flow.trace.records.len();
        if let Err(e) = writer.write_flow(&flow.trace) {
            eprintln!("write error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = writer.finish() {
        eprintln!("write error: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {packets} packets from {} flows ({:.1} MB served, {:.0}% completed) to {out_path}",
        corpus.flows.len(),
        corpus.total_bytes() as f64 / 1e6,
        corpus.completion_rate() * 100.0,
    );
    ExitCode::SUCCESS
}

//! # workloads — the paper's three services, synthesized
//!
//! The paper analyzes production traces from Qihoo 360's **cloud storage**,
//! **software download** and **web search** front-ends. Those traces are
//! proprietary, so this crate substitutes generative models calibrated to
//! every statistic the paper publishes: flow-size scales (Table 1), RTT
//! distributions (Fig. 1), loss rates with bursty (Gilbert–Elliott)
//! structure, the initial-receive-window population of Fig. 6, back-end
//! fetch delays, chunked server supply, client think times and slow client
//! drains.
//!
//! * [`service`] — the per-service models ([`ServiceModel::calibrated`]).
//! * [`spec`] — [`FlowSpec`] / [`PathSpec`] and [`simulate_flow`].
//! * [`corpus`] — corpus synthesis and paired mechanism replays.
//! * [`livegen`] — interleaved multi-service captures for the live pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod livegen;
pub mod service;
pub mod spec;

pub use corpus::{
    flow_seed, run_population, sample_flow, sample_population, synthesize_corpus, Corpus,
};
pub use livegen::{daemon_specs, generate_interleaved, LiveGenSpec, LiveGenStats, LiveMechanism};
pub use service::{Service, ServiceModel};
pub use spec::{
    flow_key_for_seed, simulate_flow, simulate_flow_into, simulate_flow_into_scratch,
    simulate_flow_oracle_into_scratch, simulate_flow_scratch, FlowSpec, PathSpec,
};
pub use tcp_sim::sim::FlowScratch;
